#include "transport/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "obs/wire.hpp"

namespace psra::transport {

using comm::Transport;
using comm::TransportError;

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

Clock::time_point Deadline(double seconds) {
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(seconds));
}

int RemainingMs(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return static_cast<int>(std::max<std::int64_t>(left.count(), 0));
}

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    ThrowErrno("fcntl(O_NONBLOCK)");
  }
}

void SetNoDelay(int fd) {
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Blocking exact-size read with a deadline (rendezvous only; the socket may
/// be in blocking mode). EOF or expiry throw.
void ReadFully(int fd, void* buf, std::size_t n, Clock::time_point deadline) {
  auto* p = static_cast<std::byte*>(buf);
  while (n > 0) {
    pollfd pfd{fd, POLLIN, 0};
    const int rc = poll(&pfd, 1, RemainingMs(deadline));
    if (rc < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("poll");
    }
    if (rc == 0) throw TransportError("rendezvous read timeout");
    const ssize_t got = recv(fd, p, n, 0);
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      ThrowErrno("recv");
    }
    if (got == 0) throw TransportError("peer closed during rendezvous");
    p += got;
    n -= static_cast<std::size_t>(got);
  }
}

void WriteFully(int fd, const void* buf, std::size_t n,
                Clock::time_point deadline) {
  const auto* p = static_cast<const std::byte*>(buf);
  while (n > 0) {
    pollfd pfd{fd, POLLOUT, 0};
    const int rc = poll(&pfd, 1, RemainingMs(deadline));
    if (rc < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("poll");
    }
    if (rc == 0) throw TransportError("rendezvous write timeout");
    const ssize_t put = send(fd, p, n, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      ThrowErrno("send");
    }
    p += put;
    n -= static_cast<std::size_t>(put);
  }
}

int ConnectLoopback(std::uint16_t port, Clock::time_point deadline) {
  while (true) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) ThrowErrno("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      SetNoDelay(fd);
      return fd;
    }
    const int err = errno;
    close(fd);
    // The peer's listener may not be up yet (process start order is
    // arbitrary); back off briefly and retry until the deadline.
    if (err != ECONNREFUSED && err != ETIMEDOUT && err != EINTR) {
      errno = err;
      ThrowErrno("connect(127.0.0.1:" + std::to_string(port) + ")");
    }
    if (Clock::now() >= deadline) {
      throw TransportError("connect timeout to 127.0.0.1:" +
                           std::to_string(port));
    }
    usleep(10'000);
  }
}

// Frame header on the wire: u32 src | u32 tag | u64 payload length.
constexpr std::size_t kHeaderSize = 16;

void EncodeHeader(std::byte* out, Transport::Rank src, Transport::Tag tag,
                  std::uint64_t len) {
  std::uint32_t s = src, t = tag;
  std::memcpy(out, &s, 4);
  std::memcpy(out + 4, &t, 4);
  std::memcpy(out + 8, &len, 8);
}

/// Barrier token tag (inside the reserved range >= kMaxUserTag).
constexpr Transport::Tag kBarrierTag = 0xFFFFFFFFu;

std::uint32_t EnvU32(const char* name) {
  const char* v = std::getenv(name);
  PSRA_REQUIRE(v != nullptr && *v != '\0',
               std::string("missing environment variable ") + name);
  return static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
}

}  // namespace

int BindListener(std::uint16_t& port, int retries) {
  std::uint16_t candidate = port;
  for (int attempt = 0;; ++attempt) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) ThrowErrno("socket");
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(candidate);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      if (listen(fd, 128) < 0) {
        close(fd);
        ThrowErrno("listen");
      }
      socklen_t len = sizeof(addr);
      if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
        close(fd);
        ThrowErrno("getsockname");
      }
      port = ntohs(addr.sin_port);
      return fd;
    }
    const int err = errno;
    close(fd);
    // Explicitly requested ports ride out collisions by probing upward;
    // ephemeral binds (port 0) cannot collide.
    if (err == EADDRINUSE && port != 0 && attempt < retries) {
      ++candidate;
      continue;
    }
    errno = err;
    ThrowErrno("bind(127.0.0.1:" + std::to_string(candidate) + ")");
  }
}

TcpOptions TcpOptions::FromEnv() {
  TcpOptions o;
  o.rank = EnvU32("PSRA_RANK");
  o.world = EnvU32("PSRA_WORLD");
  o.port = static_cast<std::uint16_t>(EnvU32("PSRA_PORT"));
  if (const char* fd = std::getenv("PSRA_LISTEN_FD"); fd != nullptr) {
    o.listen_fd = std::atoi(fd);
  }
  PSRA_REQUIRE(o.rank < o.world, "PSRA_RANK must be below PSRA_WORLD");
  return o;
}

struct TcpTransport::Impl {
  struct Frame {
    Tag tag = 0;
    std::vector<std::byte> payload;
  };

  struct Peer {
    int fd = -1;
    bool closed = false;
    // Outgoing: one contiguous queue, [send_off, size) still unsent.
    std::vector<std::byte> sendq;
    std::size_t send_off = 0;
    // Incoming: raw bytes awaiting frame parsing, then parsed frames.
    std::vector<std::byte> rbuf;
    std::deque<Frame> frames;
  };

  Rank rank = 0;
  Rank world = 1;
  double recv_timeout_s = 20.0;
  std::uint16_t listen_port = 0;
  std::vector<Peer> peers;

  // --- wire observability (all dormant while obs == nullptr) --------------
  obs::WireObs* obs = nullptr;
  // Hoisted at attach time so the pump/Recv paths skip the map lookups.
  obs::Histogram* frame_wait = nullptr;  // wire.frame.wait_s
  obs::Histogram* fence_wait = nullptr;  // wire.fence.wait_s
  std::uint64_t poll_calls = 0;
  double poll_wait_s = 0.0;
  std::uint64_t partial_writes = 0;
  std::vector<std::size_t> sendq_hwm;  // pending bytes high-water, per peer

  // --- mesh construction --------------------------------------------------

  void Rendezvous(const TcpOptions& opt) {
    rank = opt.rank;
    world = opt.world;
    recv_timeout_s = opt.recv_timeout_s;
    peers.resize(world);
    const auto deadline = Deadline(opt.connect_timeout_s);
    if (world == 1) {
      if (opt.listen_fd >= 0) close(opt.listen_fd);
      return;
    }

    int listener = -1;
    if (rank == 0) {
      if (opt.listen_fd >= 0) {
        listener = opt.listen_fd;
        sockaddr_in addr{};
        socklen_t len = sizeof(addr);
        if (getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len) <
            0) {
          ThrowErrno("getsockname(inherited listener)");
        }
        listen_port = ntohs(addr.sin_port);
      } else {
        std::uint16_t port = opt.port;
        listener = BindListener(port, opt.port_retries);
        listen_port = port;
      }
      // Collect hello{rank, listener port} from every other rank; the
      // connection itself becomes the 0 <-> r mesh link.
      std::vector<std::uint16_t> ports(world, 0);
      ports[0] = listen_port;
      for (Rank got = 1; got < world; ++got) {
        const int fd = AcceptOne(listener, deadline);
        std::byte hello[6];
        ReadFully(fd, hello, sizeof(hello), deadline);
        std::uint32_t r = 0;
        std::uint16_t port = 0;
        std::memcpy(&r, hello, 4);
        std::memcpy(&port, hello + 4, 2);
        if (r == 0 || r >= world || peers[r].fd != -1) {
          close(fd);
          throw TransportError("rendezvous: bad hello rank " +
                               std::to_string(r));
        }
        peers[r].fd = fd;
        ports[r] = port;
      }
      for (Rank r = 1; r < world; ++r) {
        WriteFully(peers[r].fd, ports.data(), ports.size() * 2, deadline);
      }
    } else {
      // Own listener (ephemeral) for the higher-ranked peers.
      std::uint16_t my_port = 0;
      listener = BindListener(my_port, 0);
      listen_port = my_port;
      // Join via rank 0 and learn everyone's listener port.
      const int fd0 = ConnectLoopback(opt.port, deadline);
      std::byte hello[6];
      const std::uint32_t me = rank;
      std::memcpy(hello, &me, 4);
      std::memcpy(hello + 4, &my_port, 2);
      WriteFully(fd0, hello, sizeof(hello), deadline);
      peers[0].fd = fd0;
      std::vector<std::uint16_t> ports(world, 0);
      ReadFully(fd0, ports.data(), ports.size() * 2, deadline);
      // Complete the mesh: connect to every lower rank's listener (they
      // accept from their backlog), then accept every higher rank.
      for (Rank r = 1; r < rank; ++r) {
        const int fd = ConnectLoopback(ports[r], deadline);
        const std::uint32_t mine = rank;
        WriteFully(fd, &mine, 4, deadline);
        peers[r].fd = fd;
      }
      for (Rank got = rank + 1; got < world; ++got) {
        const int fd = AcceptOne(listener, deadline);
        std::uint32_t r = 0;
        ReadFully(fd, &r, 4, deadline);
        if (r <= rank || r >= world || peers[r].fd != -1) {
          close(fd);
          throw TransportError("rendezvous: bad hello rank " +
                               std::to_string(r));
        }
        peers[r].fd = fd;
      }
    }
    close(listener);
    for (Rank r = 0; r < world; ++r) {
      if (r == rank) continue;
      SetNoDelay(peers[r].fd);
      if (opt.sock_buf_bytes > 0) {
        setsockopt(peers[r].fd, SOL_SOCKET, SO_SNDBUF, &opt.sock_buf_bytes,
                   sizeof(opt.sock_buf_bytes));
        setsockopt(peers[r].fd, SOL_SOCKET, SO_RCVBUF, &opt.sock_buf_bytes,
                   sizeof(opt.sock_buf_bytes));
      }
      SetNonBlocking(peers[r].fd);
    }
  }

  static int AcceptOne(int listener, Clock::time_point deadline) {
    while (true) {
      pollfd pfd{listener, POLLIN, 0};
      const int rc = poll(&pfd, 1, RemainingMs(deadline));
      if (rc < 0) {
        if (errno == EINTR) continue;
        ThrowErrno("poll(listener)");
      }
      if (rc == 0) {
        throw TransportError("rendezvous accept timeout: a rank never "
                             "connected");
      }
      const int fd = accept(listener, nullptr, nullptr);
      if (fd >= 0) return fd;
      if (errno == EINTR || errno == EAGAIN) continue;
      ThrowErrno("accept");
    }
  }

  // --- nonblocking pump ---------------------------------------------------

  /// One poll() cycle: flush pending sends, parse arriving frames.
  void PumpOnce(int timeout_ms) {
    std::vector<pollfd> pfds;
    std::vector<Rank> who;
    pfds.reserve(world);
    who.reserve(world);
    for (Rank r = 0; r < world; ++r) {
      Peer& p = peers[r];
      if (p.fd < 0) continue;
      short events = POLLIN;
      if (p.send_off < p.sendq.size()) events |= POLLOUT;
      pfds.push_back(pollfd{p.fd, events, 0});
      who.push_back(r);
    }
    if (pfds.empty()) return;
    const auto poll_begin = obs != nullptr ? Clock::now() : Clock::time_point{};
    const int rc = poll(pfds.data(), pfds.size(), timeout_ms);
    if (obs != nullptr) {
      ++poll_calls;
      poll_wait_s +=
          std::chrono::duration<double>(Clock::now() - poll_begin).count();
    }
    if (rc < 0) {
      if (errno == EINTR) return;
      ThrowErrno("poll");
    }
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      Peer& p = peers[who[i]];
      if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) ReadPeer(p);
      if (pfds[i].revents & POLLOUT) WritePeer(p);
    }
  }

  void ReadPeer(Peer& p) {
    std::byte chunk[65536];
    while (p.fd >= 0) {
      const ssize_t got = recv(p.fd, chunk, sizeof(chunk), 0);
      if (got > 0) {
        p.rbuf.insert(p.rbuf.end(), chunk, chunk + got);
        if (got < static_cast<ssize_t>(sizeof(chunk))) break;
        continue;
      }
      if (got == 0) {  // orderly shutdown: the peer process is gone
        close(p.fd);
        p.fd = -1;
        p.closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        close(p.fd);
        p.fd = -1;
        p.closed = true;
        break;
      }
      ThrowErrno("recv");
    }
    // Parse complete frames out of the raw buffer.
    std::size_t off = 0;
    while (p.rbuf.size() - off >= kHeaderSize) {
      std::uint32_t src = 0, tag = 0;
      std::uint64_t len = 0;
      std::memcpy(&src, p.rbuf.data() + off, 4);
      std::memcpy(&tag, p.rbuf.data() + off + 4, 4);
      std::memcpy(&len, p.rbuf.data() + off + 8, 8);
      if (p.rbuf.size() - off - kHeaderSize < len) break;
      Frame f;
      f.tag = tag;
      f.payload.assign(p.rbuf.begin() + static_cast<std::ptrdiff_t>(
                                            off + kHeaderSize),
                       p.rbuf.begin() +
                           static_cast<std::ptrdiff_t>(off + kHeaderSize +
                                                       len));
      p.frames.push_back(std::move(f));
      off += kHeaderSize + len;
    }
    if (off > 0) p.rbuf.erase(p.rbuf.begin(),
                              p.rbuf.begin() + static_cast<std::ptrdiff_t>(off));
  }

  void WritePeer(Peer& p) {
    while (p.fd >= 0 && p.send_off < p.sendq.size()) {
      const ssize_t put = send(p.fd, p.sendq.data() + p.send_off,
                               p.sendq.size() - p.send_off, MSG_NOSIGNAL);
      if (put > 0) {
        p.send_off += static_cast<std::size_t>(put);
        continue;
      }
      if (put < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // Kernel buffer full with frames still queued: the write completes
        // across multiple pump cycles.
        if (obs != nullptr) ++partial_writes;
        return;
      }
      if (put < 0 && errno == EINTR) continue;
      if (put < 0 && (errno == EPIPE || errno == ECONNRESET)) {
        close(p.fd);
        p.fd = -1;
        p.closed = true;
        return;
      }
      ThrowErrno("send");
    }
    if (p.send_off == p.sendq.size()) {
      p.sendq.clear();
      p.send_off = 0;
    }
  }

  // --- primitives ---------------------------------------------------------

  void Enqueue(Rank dst, Tag tag, std::span<const std::byte> payload) {
    if (dst == rank) {  // local loopback
      Frame f;
      f.tag = tag;
      f.payload.assign(payload.begin(), payload.end());
      peers[rank].frames.push_back(std::move(f));
      return;
    }
    Peer& p = peers[dst];
    if (p.closed) {
      throw TransportError("post to rank " + std::to_string(dst) +
                           " which already closed its connection");
    }
    std::byte header[kHeaderSize];
    EncodeHeader(header, rank, tag, payload.size());
    p.sendq.insert(p.sendq.end(), header, header + kHeaderSize);
    p.sendq.insert(p.sendq.end(), payload.begin(), payload.end());
    if (obs != nullptr) {
      const std::size_t pending = p.sendq.size() - p.send_off;
      if (pending > sendq_hwm[dst]) sendq_hwm[dst] = pending;
    }
    WritePeer(p);  // opportunistic flush
  }

  std::vector<std::byte> Dequeue(Rank src, Tag tag) {
    const auto deadline = Deadline(recv_timeout_s);
    while (true) {
      Peer& p = peers[src];
      for (auto it = p.frames.begin(); it != p.frames.end(); ++it) {
        if (it->tag == tag) {
          std::vector<std::byte> payload = std::move(it->payload);
          p.frames.erase(it);
          return payload;
        }
      }
      if (p.closed) {
        throw TransportError("rank " + std::to_string(src) +
                             " died before sending tag " +
                             std::to_string(tag));
      }
      if (Clock::now() >= deadline) {
        throw TransportError("recv timeout waiting for rank " +
                             std::to_string(src) + " tag " +
                             std::to_string(tag));
      }
      PumpOnce(std::min(RemainingMs(deadline), 50));
    }
  }

  void FlushAll() {
    const auto deadline = Deadline(recv_timeout_s);
    while (true) {
      bool pending = false;
      for (Rank r = 0; r < world; ++r) {
        if (peers[r].send_off < peers[r].sendq.size()) pending = true;
      }
      if (!pending) return;
      if (Clock::now() >= deadline) {
        throw TransportError("fence timeout: outgoing queue never drained");
      }
      PumpOnce(std::min(RemainingMs(deadline), 50));
    }
  }

  ~Impl() {
    for (Peer& p : peers) {
      if (p.fd >= 0) close(p.fd);
    }
  }
};

TcpTransport::TcpTransport(const TcpOptions& options)
    : impl_(std::make_unique<Impl>()) {
  PSRA_REQUIRE(options.world > 0, "tcp transport needs at least one rank");
  PSRA_REQUIRE(options.rank < options.world, "rank must be below world size");
  impl_->Rendezvous(options);
}

TcpTransport::~TcpTransport() = default;

Transport::Rank TcpTransport::rank() const { return impl_->rank; }
Transport::Rank TcpTransport::world_size() const { return impl_->world; }
std::uint16_t TcpTransport::listen_port() const { return impl_->listen_port; }

void TcpTransport::Post(Rank dst, Tag tag,
                        std::span<const std::byte> payload) {
  CheckPeer(dst);
  CheckUserTag(tag);
  if (obs::WireObs* o = impl_->obs; o != nullptr) {
    // Post is nonblocking, so the span is an instant marking when the frame
    // entered the send queue; the matching wire_recv on the peer closes the
    // edge.
    const double now = o->Now();
    o->tracer().Add(o->track(), "wire_post", now, now, o->iteration, 0.0,
                    static_cast<std::int64_t>(dst), tag);
  }
  impl_->Enqueue(dst, tag, payload);
  CountPost(payload.size());
}

void TcpTransport::Recv(Rank src, Tag tag, std::vector<std::byte>& out) {
  CheckPeer(src);
  CheckUserTag(tag);
  obs::WireObs* o = impl_->obs;
  const double begin = o != nullptr ? o->Now() : 0.0;
  out = impl_->Dequeue(src, tag);
  if (o != nullptr) {
    const double end = o->Now();
    o->tracer().Add(o->track(), "wire_recv", begin, end, o->iteration,
                    end - begin, static_cast<std::int64_t>(src), tag);
    impl_->frame_wait->Observe(end - begin);
  }
  CountRecv(out.size());
}

void TcpTransport::Fence() {
  obs::WireObs* o = impl_->obs;
  const double begin = o != nullptr ? o->Now() : 0.0;
  impl_->FlushAll();  // Waitall
  // Centralized barrier through rank 0 with an internal (uncounted) token.
  const std::byte token{0};
  if (impl_->world > 1) {
    if (impl_->rank == 0) {
      for (Rank r = 1; r < impl_->world; ++r) {
        (void)impl_->Dequeue(r, kBarrierTag);
      }
      for (Rank r = 1; r < impl_->world; ++r) {
        impl_->Enqueue(r, kBarrierTag, std::span<const std::byte>(&token, 1));
      }
      impl_->FlushAll();
    } else {
      impl_->Enqueue(0, kBarrierTag, std::span<const std::byte>(&token, 1));
      impl_->FlushAll();
      (void)impl_->Dequeue(0, kBarrierTag);
    }
  }
  if (o != nullptr) {
    const double end = o->Now();
    o->tracer().Add(o->track(), "wire_fence", begin, end, o->iteration,
                    end - begin);
    impl_->fence_wait->Observe(end - begin);
  }
  CountFence();
}

void TcpTransport::AttachObs(obs::WireObs* obs) {
  Transport::AttachObs(obs);
  impl_->obs = obs;
  if (obs != nullptr) {
    impl_->frame_wait =
        &obs->metrics().Histo("wire.frame.wait_s", obs::WireLatencyBounds());
    impl_->fence_wait =
        &obs->metrics().Histo("wire.fence.wait_s", obs::WireLatencyBounds());
    impl_->sendq_hwm.assign(impl_->world, 0);
  } else {
    impl_->frame_wait = nullptr;
    impl_->fence_wait = nullptr;
  }
}

void TcpTransport::FlushWireMetrics() {
  obs::WireObs* o = impl_->obs;
  if (o == nullptr) return;
  // Counters flush incrementally (add the window, then reset) so repeated
  // flushes never double-count; gauges carry lifetime totals.
  o->metrics().Counter("wire.partial_writes") += impl_->partial_writes;
  o->metrics().Counter("wire.poll.calls") += impl_->poll_calls;
  impl_->partial_writes = 0;
  impl_->poll_calls = 0;
  o->metrics().Gauge(o->RankKey("poll_wait_s")) = impl_->poll_wait_s;
  for (Rank r = 0; r < impl_->world; ++r) {
    if (r == impl_->rank) continue;
    o->metrics().Gauge(o->RankKey("sendq_hwm.peer" + std::to_string(r))) =
        static_cast<double>(impl_->sendq_hwm[r]);
  }
}

}  // namespace psra::transport
