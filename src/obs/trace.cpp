#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>

#include "support/status.hpp"
#include "support/string_util.hpp"

namespace psra::obs {

TrackId SpanTracer::AddTrack(std::string name) {
  tracks_.push_back(Track{std::move(name), {}});
  return static_cast<TrackId>(tracks_.size() - 1);
}

void SpanTracer::Add(TrackId track, const char* name,
                     simnet::VirtualTime begin, simnet::VirtualTime end,
                     std::uint64_t iteration, double wall_s) {
  Add(track, name, begin, end, iteration, wall_s, -1, 0);
}

void SpanTracer::Add(TrackId track, const char* name,
                     simnet::VirtualTime begin, simnet::VirtualTime end,
                     std::uint64_t iteration, double wall_s, std::int64_t peer,
                     std::uint64_t tag) {
  PSRA_REQUIRE(track < tracks_.size(), "unknown trace track");
  TraceSpan s;
  s.name = name;
  s.begin = begin;
  s.end = std::max(begin, end);
  s.iteration = iteration;
  s.wall_s = wall_s;
  s.peer = peer;
  s.tag = tag;
  tracks_[track].spans.push_back(s);
}

double SpanTracer::Coverage(TrackId track, simnet::VirtualTime horizon) const {
  PSRA_REQUIRE(track < tracks_.size(), "unknown trace track");
  if (horizon <= 0.0) return 1.0;
  // Union of (possibly nested/overlapping) intervals via sorted sweep.
  std::vector<std::pair<simnet::VirtualTime, simnet::VirtualTime>> iv;
  iv.reserve(tracks_[track].spans.size());
  for (const auto& s : tracks_[track].spans) {
    if (s.end > s.begin) iv.emplace_back(s.begin, std::min(s.end, horizon));
  }
  std::sort(iv.begin(), iv.end());
  simnet::VirtualTime covered = 0.0, cur_lo = 0.0, cur_hi = -1.0;
  for (const auto& [lo, hi] : iv) {
    if (hi <= cur_hi) continue;
    if (lo > cur_hi) {
      if (cur_hi > cur_lo) covered += cur_hi - cur_lo;
      cur_lo = lo;
    }
    cur_hi = hi;
  }
  if (cur_hi > cur_lo) covered += cur_hi - cur_lo;
  return covered / horizon;
}

namespace {

void WriteString(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

/// Virtual seconds -> trace microseconds.
void WriteTs(std::ostream& os, simnet::VirtualTime t) {
  os << FormatDouble(t * 1e6, 15);
}

}  // namespace

void SpanTracer::WriteChromeJson(std::ostream& os) const {
  os << "{\"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    os << (first ? "  " : ",\n  ");
    first = false;
  };
  sep();
  os << R"({"ph": "M", "name": "process_name", "pid": 0, "tid": 0, )"
     << R"("args": {"name": "psra virtual time"}})";
  for (TrackId t = 0; t < tracks_.size(); ++t) {
    sep();
    os << R"({"ph": "M", "name": "thread_name", "pid": 0, "tid": )" << t
       << R"(, "args": {"name": )";
    WriteString(os, tracks_[t].name);
    os << "}}";
    // Explicit sort index keeps the Perfetto track order stable (= creation
    // order) instead of first-event order.
    sep();
    os << R"({"ph": "M", "name": "thread_sort_index", "pid": 0, "tid": )" << t
       << R"(, "args": {"sort_index": )" << t << "}}";
  }
  for (TrackId t = 0; t < tracks_.size(); ++t) {
    for (const auto& s : tracks_[t].spans) {
      sep();
      os << R"({"ph": "X", "name": )";
      WriteString(os, s.name);
      os << R"(, "cat": "vt", "pid": 0, "tid": )" << t << R"(, "ts": )";
      WriteTs(os, s.begin);
      os << R"(, "dur": )";
      WriteTs(os, s.end - s.begin);
      os << R"(, "args": {"iter": )" << s.iteration << R"(, "wall_us": )"
         << FormatDouble(s.wall_s * 1e6, 9);
      if (s.peer >= 0) {
        os << R"(, "peer": )" << s.peer << R"(, "tag": )" << s.tag;
      }
      os << "}}";
    }
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

}  // namespace psra::obs
