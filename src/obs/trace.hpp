// Per-worker span tracer over VIRTUAL time.
//
// Every simulated actor (worker, leader, the Group Generator) owns one
// track; the engines record named phase spans — x_update, w_allreduce,
// scatter_reduce, allgather, gg_wait, intra_reduce, fault_retry, ... — whose
// begin/end timestamps come straight from the TimeLedger, optionally
// annotated with the wall-clock seconds the host spent on the phase. Tracks
// are append-only and owned by exactly one logical actor, so recording takes
// no locks; the engines' main loop is the only writer.
//
// Export is Chrome trace_event JSON ("X" complete events, one tid per
// track), loadable in chrome://tracing and Perfetto. Virtual seconds map to
// trace microseconds, so a 2.5 s virtual makespan reads as 2.5 s on the UI
// timeline.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "simnet/cost_model.hpp"

namespace psra::obs {

using TrackId = std::uint32_t;

struct TraceSpan {
  /// Phase name; must point at a string literal (spans store the pointer).
  const char* name = "";
  simnet::VirtualTime begin = 0.0;
  simnet::VirtualTime end = 0.0;
  /// 1-based engine iteration the span belongs to (0 = outside iterations).
  std::uint64_t iteration = 0;
  /// Host wall-clock seconds attributed to the phase (0 = not measured).
  double wall_s = 0.0;
  /// Remote rank for transport-level spans (wire_post / wire_recv); -1 means
  /// the span has no peer and the exporter omits the peer/tag args.
  std::int64_t peer = -1;
  /// Transport tag for transport-level spans (meaningful only when peer >= 0).
  std::uint64_t tag = 0;
};

class SpanTracer {
 public:
  /// Registers a named track (e.g. "worker 3 (node 0)") and returns its id.
  TrackId AddTrack(std::string name);

  std::size_t num_tracks() const { return tracks_.size(); }
  const std::string& track_name(TrackId t) const { return tracks_[t].name; }
  const std::vector<TraceSpan>& spans(TrackId t) const {
    return tracks_[t].spans;
  }

  /// Records one closed span on `track`. Zero-length spans are kept (they
  /// mark instantaneous events); negative-length spans are clamped.
  void Add(TrackId track, const char* name, simnet::VirtualTime begin,
           simnet::VirtualTime end, std::uint64_t iteration,
           double wall_s = 0.0);

  /// As above, but tags the span with a transport peer rank + message tag so
  /// the report side can match send->recv edges across rank lanes.
  void Add(TrackId track, const char* name, simnet::VirtualTime begin,
           simnet::VirtualTime end, std::uint64_t iteration, double wall_s,
           std::int64_t peer, std::uint64_t tag);

  /// Fraction of [0, horizon] covered by the union of the track's spans.
  /// The acceptance gate for engine instrumentation: >= 0.95 of each
  /// worker's virtual makespan must be attributed to a named phase.
  double Coverage(TrackId track, simnet::VirtualTime horizon) const;

  /// Chrome trace_event JSON (trace-viewer "JSON Object Format"):
  /// thread-name metadata per track plus one "X" event per span.
  void WriteChromeJson(std::ostream& os) const;

 private:
  struct Track {
    std::string name;
    std::vector<TraceSpan> spans;
  };
  std::vector<Track> tracks_;
};

}  // namespace psra::obs
