// Minimal JSON syntax validator + flat key iterator + DOM parser.
//
// The observability artifacts (trace.json, metrics.json) are emitted by
// hand-rolled writers; this recursive-descent scanner is how the tests and
// the metrics schema checker prove the output is well-formed JSON without
// pulling in an external parser. The Scanner validates syntax only — values
// are not materialized — and collects the dotted paths of every object key
// so a schema can be checked against the emitted key set. Parse() (the read
// side used by tools/psra_report) materializes a Value tree; it routes all
// malformed input through the Scanner first, so rejection carries the
// scanner's offset-bearing error message.
#pragma once

#include <cctype>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace psra::obs::json {

class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  /// Validates the whole input as one JSON value (plus trailing whitespace).
  /// On success, Keys() holds every object key as a dotted path, e.g.
  /// "counters.engine.iterations" for {"counters":{"engine.iterations":1}}.
  bool Validate() {
    pos_ = 0;
    keys_.clear();
    error_.clear();
    SkipWs();
    if (!Value("")) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing garbage");
    return true;
  }

  const std::vector<std::string>& Keys() const { return keys_; }
  const std::string& Error() const { return error_; }

 private:
  bool Fail(const char* what) {
    error_ = std::string(what) + " at offset " + std::to_string(pos_);
    return false;
  }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return Fail("bad literal");
    pos_ += lit.size();
    return true;
  }
  bool String(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return Fail("expected '\"'");
    ++pos_;
    std::string s;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("bad escape");
        c = text_[pos_++];
        if (c != '"' && c != '\\' && c != '/' && c != 'b' && c != 'f' &&
            c != 'n' && c != 'r' && c != 't' && c != 'u') {
          return Fail("bad escape");
        }
        if (c == 'u') {
          for (int i = 0; i < 4; ++i, ++pos_) {
            if (pos_ >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
              return Fail("bad \\u escape");
            }
          }
          c = '?';
        }
      }
      s.push_back(c);
    }
    if (pos_ >= text_.size()) return Fail("unterminated string");
    ++pos_;  // closing quote
    if (out != nullptr) *out = std::move(s);
    return true;
  }
  bool Number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      eat_digits();
    }
    if (!digits) {
      pos_ = start;
      return Fail("expected number");
    }
    return true;
  }
  bool Value(const std::string& path) {
    if (pos_ >= text_.size()) return Fail("expected value");
    const char c = text_[pos_];
    if (c == '{') return Object(path);
    if (c == '[') return Array(path);
    if (c == '"') return String(nullptr);
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }
  bool Object(const std::string& path) {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!String(&key)) return false;
      const std::string child = path.empty() ? key : path + "." + key;
      keys_.push_back(child);
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return Fail("expected ':'");
      ++pos_;
      SkipWs();
      if (!Value(child)) return false;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }
  bool Array(const std::string& path) {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value(path)) return false;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::vector<std::string> keys_;
  std::string error_;
};

/// Materialized JSON value. Objects keep insertion order (the writers emit
/// sorted keys, and golden-file tests depend on stable iteration), arrays
/// keep element order. Numbers are doubles — every number the observability
/// writers emit round-trips through FormatDouble, so double is lossless for
/// this use.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> items;                             // kArray
  std::vector<std::pair<std::string, Value>> members;   // kObject

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Looks up an object member by key; null when absent or not an object.
  const Value* Find(std::string_view key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Parses `text` as one JSON value. Throws InvalidArgument carrying the
/// Scanner's error (with byte offset) on malformed input.
Value Parse(std::string_view text);

}  // namespace psra::obs::json
