#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "obs/metrics.hpp"
#include "support/status.hpp"
#include "support/string_util.hpp"

namespace psra::obs {

void TimeSeries::Append(double v) {
  const std::size_t slot = size_ % TimeSeriesRecorder::kChunkSamples;
  if (slot == 0) {
    PSRA_CHECK(owner_ != nullptr, "append on a detached TimeSeries");
    chunks_.push_back(owner_->Lease());
  }
  chunks_.back()[slot] = v;
  ++size_;
}

double TimeSeries::operator[](std::size_t i) const {
  PSRA_REQUIRE(i < size_, "TimeSeries index out of range: " + name_);
  return chunks_[i / TimeSeriesRecorder::kChunkSamples]
                [i % TimeSeriesRecorder::kChunkSamples];
}

double* TimeSeriesRecorder::Lease() {
  if (!free_.empty()) {
    double* chunk = free_.back();
    free_.pop_back();
    return chunk;
  }
  owned_.push_back(std::make_unique<Chunk>());
  return owned_.back()->v;
}

TimeSeries& TimeSeriesRecorder::Series(const std::string& name) {
  PSRA_REQUIRE(name.rfind("ts.", 0) == 0 && name.size() > 3,
               "time-series names live under the ts. namespace: " + name);
  auto [it, inserted] = series_.try_emplace(name);
  if (inserted) {
    it->second.owner_ = this;
    it->second.name_ = name;
  }
  return it->second;
}

const TimeSeries* TimeSeriesRecorder::Find(const std::string& name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

void TimeSeriesRecorder::BeginIteration(std::uint64_t iteration) {
  if (iterations_.owner_ == nullptr) {
    iterations_.owner_ = this;
    iterations_.name_ = "ts.<iterations>";
  }
  iterations_.Append(static_cast<double>(iteration));
}

std::uint64_t TimeSeriesRecorder::IterationAt(std::size_t r) const {
  return static_cast<std::uint64_t>(iterations_[r]);
}

void TimeSeriesRecorder::Clear() {
  for (auto& [name, s] : series_) {
    for (double* chunk : s.chunks_) free_.push_back(chunk);
  }
  series_.clear();
  for (double* chunk : iterations_.chunks_) free_.push_back(chunk);
  iterations_.chunks_.clear();
  iterations_.size_ = 0;
}

void TimeSeriesRecorder::MergeFrom(const TimeSeriesRecorder& other) {
  for (std::size_t r = 0; r < other.rows(); ++r) {
    BeginIteration(other.IterationAt(r));
  }
  for (const auto& [name, src] : other.series_) {
    TimeSeries& dst = Series(name);
    for (std::size_t i = 0; i < src.size(); ++i) dst.Append(src[i]);
  }
}

namespace {

void WriteSample(std::ostream& os, double v) {
  // JSON has no NaN/Inf; a diverged sample round-trips as null -> NaN.
  if (std::isfinite(v)) {
    os << FormatDouble(v, 17);
  } else {
    os << "null";
  }
}

}  // namespace

void TimeSeriesRecorder::WriteJsonl(std::ostream& os) const {
  os << "{\"psra_timeline\": 1, \"series\": [";
  bool first = true;
  for (const auto& [name, s] : series_) {
    PSRA_REQUIRE(s.size() == rows(),
                 "ragged timeline: " + name + " has " +
                     std::to_string(s.size()) + " samples over " +
                     std::to_string(rows()) + " rows");
    os << (first ? "" : ", ") << '"' << name << '"';
    first = false;
  }
  os << "]}\n";
  for (std::size_t r = 0; r < rows(); ++r) {
    os << "{\"it\": " << IterationAt(r) << ", \"v\": [";
    bool first_col = true;
    for (const auto& [name, s] : series_) {
      if (!first_col) os << ", ";
      WriteSample(os, s[r]);
      first_col = false;
    }
    os << "]}\n";
  }
}

void TimeSeriesRecorder::PublishSummary(MetricsRegistry& m) const {
  for (const auto& [name, s] : series_) {
    m.Gauge(name + ".samples") = static_cast<double>(s.size());
    if (s.empty()) continue;
    double lo = s[0], hi = s[0];
    for (std::size_t i = 1; i < s.size(); ++i) {
      lo = std::min(lo, s[i]);
      hi = std::max(hi, s[i]);
    }
    m.Gauge(name + ".first") = s.front();
    m.Gauge(name + ".last") = s.back();
    m.Gauge(name + ".min") = lo;
    m.Gauge(name + ".max") = hi;
  }
}

std::uint64_t TimeSeriesRecorder::FirstIterationAtOrBelow(
    const std::string& name, double value) const {
  const TimeSeries* s = Find(name);
  if (s == nullptr) return 0;
  const std::size_t n = std::min(s->size(), rows());
  for (std::size_t r = 0; r < n; ++r) {
    if ((*s)[r] <= value) return IterationAt(r);
  }
  return 0;
}

}  // namespace psra::obs
