// Observability context: the single handle an engine run is (optionally)
// given. Owning both the span tracer and the metrics registry, it is the
// "sink" referred to across the codebase: with no ObsContext installed
// (RunOptions::obs == nullptr, the default) every instrumentation site
// reduces to one null-pointer test — no allocation, no stores — preserving
// the 0-allocs/iter hot-path gate and bitwise determinism.
//
// The tracer and registry only ever OBSERVE a run (ledger clocks, collective
// stats); they never feed back into it, so a run with an ObsContext attached
// is bitwise-identical to the same run without one (pinned by test_obs).
#pragma once

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace psra::obs {

struct ObsContext {
  SpanTracer tracer;
  MetricsRegistry metrics;
  /// Per-iteration convergence telemetry (residuals, objective, rho, ...);
  /// engines record one row per iteration whenever a context is attached.
  TimeSeriesRecorder timeline;
  /// Set false to keep the metrics registry but skip span recording (e.g.
  /// when a harness aggregates metrics over many runs but wants the trace of
  /// only one representative run).
  bool tracing = true;
};

}  // namespace psra::obs
