#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>

#include "support/status.hpp"
#include "support/string_util.hpp"

namespace psra::obs {

void Histogram::Observe(double value) {
  ++count;
  sum += value;
  for (std::size_t b = 0; b < bounds.size(); ++b) {
    if (value <= bounds[b]) {
      ++counts[b];
      return;
    }
  }
  ++counts.back();  // overflow bucket
}

void Histogram::Merge(const Histogram& other) {
  PSRA_REQUIRE(bounds == other.bounds,
               "histogram merge requires identical bucket bounds");
  for (std::size_t b = 0; b < counts.size(); ++b) counts[b] += other.counts[b];
  count += other.count;
  sum += other.sum;
}

std::uint64_t& MetricsRegistry::Counter(const std::string& name) {
  return counters_[name];
}

double& MetricsRegistry::Gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::Histo(const std::string& name,
                                  std::span<const double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  PSRA_REQUIRE(!bounds.empty() && std::is_sorted(bounds.begin(), bounds.end()),
               "histogram bounds must be non-empty and ascending");
  Histogram h;
  h.bounds.assign(bounds.begin(), bounds.end());
  h.counts.assign(bounds.size() + 1, 0);
  return histograms_.emplace(name, std::move(h)).first->second;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, v] : other.gauges_) gauges_[name] = v;
  for (const auto& [name, h] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else {
      it->second.Merge(h);
    }
  }
}

namespace {

void WriteString(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

void WriteNumber(std::ostream& os, double v) {
  os << FormatDouble(v, 17);
}

}  // namespace

void MetricsRegistry::WriteJson(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    os << (first ? "\n    " : ",\n    ");
    WriteString(os, name);
    os << ": " << v;
    first = false;
  }
  os << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges_) {
    os << (first ? "\n    " : ",\n    ");
    WriteString(os, name);
    os << ": ";
    WriteNumber(os, v);
    first = false;
  }
  os << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n    " : ",\n    ");
    WriteString(os, name);
    os << ": {\"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b != 0) os << ", ";
      WriteNumber(os, h.bounds[b]);
    }
    os << "], \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b != 0) os << ", ";
      os << h.counts[b];
    }
    os << "], \"count\": " << h.count << ", \"sum\": ";
    WriteNumber(os, h.sum);
    os << "}";
    first = false;
  }
  os << (first ? "}" : "\n  }") << "\n}\n";
}

}  // namespace psra::obs
