// Trace/metrics analytics: the READ side of the observability stack.
//
// LoadChromeTrace re-ingests the Chrome trace_event JSON that
// SpanTracer::WriteChromeJson emits (and MetricsFromJson re-ingests
// MetricsRegistry::WriteJson), then AnalyzeTrace turns the span soup into
// the questions the paper cares about:
//
//   - per-phase time breakdown, rolled up into compute / communicate / wait
//     classes (the paper's Cal_time vs Comm_time split, per phase);
//   - the per-iteration critical path: which worker finished each iteration
//     last, and which phases its time went to — the straggler's-eye view
//     that explains the makespan;
//   - per-worker straggler skew (slowest finish over mean finish);
//   - wall-vs-virtual ratio: how many simulated seconds each host second
//     buys, from the Stopwatch wall_s annotations on spans.
//
// Nested spans (scatter_reduce/allgather inside w_allreduce) are detected
// with a cover sweep and excluded from the class totals so time is never
// double-counted; they still appear in the per-phase table with their own
// row. All analysis is pure — a committed trace fixture yields a
// byte-identical report, which is what the golden-file tests pin.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace psra::obs {

/// Phase classes for the compute/communicate/wait rollup.
enum class PhaseClass : std::uint8_t {
  kCompute = 0,
  kCommunicate = 1,
  kWait = 2,
  kOther = 3,
};
inline constexpr std::size_t kNumPhaseClasses = 4;
const char* PhaseClassName(PhaseClass c);
/// Maps a span name to its class (x_update -> compute, w_allreduce ->
/// communicate, gg_wait/ssp_wait/z_wait -> wait, unknown -> other).
PhaseClass ClassifyPhase(std::string_view name);

/// One span re-loaded from a trace artifact. Times are virtual seconds.
struct ReportSpan {
  std::string name;
  double begin = 0.0;
  double end = 0.0;
  std::uint64_t iteration = 0;
  double wall_s = 0.0;
  /// Remote rank for transport-level spans (wire_post / wire_recv); -1 when
  /// the span carries no peer annotation.
  std::int64_t peer = -1;
  /// Transport tag (meaningful only when peer >= 0).
  std::uint64_t tag = 0;
  /// False when the span lies inside the union of earlier spans on its
  /// track (a nested sub-phase); nested spans are excluded from rollups.
  bool top_level = true;
};

struct ReportTrack {
  std::string name;
  std::vector<ReportSpan> spans;  // sorted by (begin, -end)
};

struct TraceData {
  std::vector<ReportTrack> tracks;
};

/// Parses a SpanTracer Chrome trace_event artifact. Throws InvalidArgument
/// on malformed JSON (with the scanner's byte offset) or on structurally
/// alien input (no traceEvents array).
TraceData LoadChromeTrace(std::string_view text);

/// Same, from an already-parsed JSON value (the collection plane embeds the
/// trace as a sub-object of a per-rank payload).
TraceData LoadChromeTrace(const json::Value& root);

/// Parses a MetricsRegistry::WriteJson artifact back into a registry.
/// Throws InvalidArgument on malformed or structurally alien input.
MetricsRegistry MetricsFromJson(std::string_view text);

/// Same, from an already-parsed JSON value.
MetricsRegistry MetricsFromJson(const json::Value& root);

struct PhaseStat {
  std::string name;
  PhaseClass cls = PhaseClass::kOther;
  double virtual_s = 0.0;     // top-level spans only
  double wall_s = 0.0;
  std::uint64_t count = 0;    // all spans, nested included
  bool nested = false;        // true when every occurrence was nested
};

struct TrackStat {
  std::string name;
  double finish = 0.0;     // last span end
  double busy_s = 0.0;     // union of the track's spans
  double wall_s = 0.0;
  /// Spans of this track on the longest blocking chain (see AnalyzeTrace).
  std::uint64_t critical_spans = 0;
};

/// Cross-rank send->recv matching over wire_post/wire_recv peer annotations
/// (k-th post to (src, dst, tag) pairs with the k-th recv — per-peer frame
/// order is FIFO on every backend). All zero for simulator traces.
struct WireEdgeStats {
  std::uint64_t matched = 0;
  std::uint64_t unmatched_posts = 0;
  std::uint64_t unmatched_recvs = 0;
  /// Summed / max post-begin -> recv-end latency over matched edges,
  /// clamped at zero (clock alignment is an estimate).
  double total_latency_s = 0.0;
  double max_latency_s = 0.0;
};

struct TraceReport {
  double horizon = 0.0;          // max span end over all tracks
  std::uint64_t iterations = 0;  // max iteration label seen
  std::size_t num_spans = 0;
  double total_wall_s = 0.0;
  /// Simulated seconds per host second (horizon / total_wall_s; 0 when the
  /// trace carries no wall annotations).
  double sim_speedup = 0.0;
  std::vector<PhaseStat> phases;          // sorted by virtual_s descending
  double class_virtual_s[kNumPhaseClasses] = {};
  double class_wall_s[kNumPhaseClasses] = {};
  std::vector<TrackStat> tracks;
  /// Straggler skew over tracks named "worker*" or "rank*": max finish /
  /// mean finish (1.0 = perfectly balanced; 0 when there are no such
  /// tracks).
  double worker_skew = 0.0;
  std::string slowest_worker;
  /// Phase breakdown along the longest blocking chain: walking backwards
  /// from the last span to finish through same-track ordering, matched
  /// send->recv edges, and collective barriers.
  std::vector<PhaseStat> critical_phases;
  /// Send->recv edge matching stats (wire traces only).
  WireEdgeStats edges;
};

TraceReport AnalyzeTrace(const TraceData& trace);

/// Markdown report: run summary, phase/class tables, per-worker skew,
/// critical path, and (when `metrics` is non-null) the eq. 11-16
/// bytes-on-wire comparison across comm.allreduce.* algorithms.
void WriteReportMarkdown(const TraceReport& report,
                         const MetricsRegistry* metrics, std::ostream& os);

/// Machine-readable companion: one `phase` row per phase plus `class`,
/// `track`, and `critical` rows. Stable ordering for golden-file tests.
void WriteReportCsv(const TraceReport& report, std::ostream& os);

/// Markdown report for a merged wire trace (psra_report --wire): per-rank
/// phase-class breakdown, rank skew/straggler table, send->recv edge
/// matching, the blocking chain, and — when `metrics` is non-null — the
/// wire.* taxonomy plus the measured-vs-simulator counter agreement table
/// (sim.* reference counters recorded by the conformance harness).
void WriteWireReportMarkdown(const TraceData& trace, const TraceReport& report,
                             const MetricsRegistry* metrics, std::ostream& os);

/// Markdown diff of two analyzed runs, A (baseline) vs B (candidate):
/// run-summary deltas, per-phase virtual/wall deltas over the union of
/// phase names (union sorted by |virtual delta| descending so the biggest
/// movement reads first), the class rollup, and — when both metrics
/// registries are present — every counter whose value changed. Output is a
/// pure function of the inputs (golden-file friendly).
void WriteReportDiffMarkdown(const TraceReport& a, const TraceReport& b,
                             const MetricsRegistry* metrics_a,
                             const MetricsRegistry* metrics_b,
                             std::ostream& os);

// ---- Convergence timeline (the --timeline-out JSONL; DESIGN.md §13) ------

/// A re-loaded timeline artifact: the header's series names plus one column
/// of samples per series. Null samples (non-finite at write time) come back
/// as NaN.
struct TimelineData {
  std::vector<std::string> series;           // header order (sorted)
  std::vector<std::uint64_t> iterations;     // one per row
  std::vector<std::vector<double>> columns;  // [series index][row]

  std::size_t rows() const { return iterations.size(); }
  /// Column for a series name; null when absent.
  const std::vector<double>* Column(std::string_view name) const;
};

/// Parses a TimeSeriesRecorder::WriteJsonl artifact. Throws InvalidArgument
/// naming the 1-based line number on malformed input: non-JSON lines, a
/// missing or alien header, rows whose value count disagrees with the
/// header, or samples that are neither numbers nor null.
TimelineData LoadTimelineJsonl(std::string_view text);

struct TimelineSeriesStat {
  std::string name;
  double first = 0.0;  // first sample (NaN if the row was null)
  double last = 0.0;
  double min = 0.0;    // over finite samples
  double max = 0.0;
  std::size_t finite = 0;  // finite sample count
  bool has_non_finite = false;
};

/// First iteration at which a residual series reached `tol`; 0 = never.
struct TimelineCrossing {
  std::string series;
  double tol = 0.0;
  std::uint64_t iteration = 0;
};

/// Stall/divergence health of one residual-like series, judged over a
/// trailing window of max(5, rows/4) rows.
struct TimelineHealth {
  std::string series;
  std::size_t window = 0;
  /// Relative improvement over the window: (v[-1-w] - v[-1]) / |v[-1-w]|.
  double window_improvement = 0.0;
  bool stalled = false;   // window improvement below 1 %
  bool diverged = false;  // last sample above the first, or non-finite
};

/// One row of the bytes-vs-residual efficiency table (cumulative ts.bytes
/// against the residual trajectory, sampled at up to 8 recorded rows).
struct TimelineEfficiencyRow {
  std::uint64_t iteration = 0;
  double cumulative_bytes = 0.0;
  double residual = 0.0;
};

struct TimelineReport {
  std::size_t rows = 0;
  std::uint64_t first_iteration = 0;
  std::uint64_t last_iteration = 0;
  /// True when recorded iterations ascend by exactly 1 row to row — what a
  /// single uninterrupted run (or a correctly merged split run) produces.
  bool contiguous = true;
  std::vector<TimelineSeriesStat> series;    // header order
  std::vector<TimelineCrossing> crossings;   // residual series x tolerances
  std::vector<TimelineHealth> health;        // residual series
  bool has_rho = false;
  double rho_first = 0.0;
  double rho_last = 0.0;
  std::uint64_t rho_changes = 0;  // row-to-row value changes
  /// Present when the timeline carries ts.bytes; `efficiency_series` names
  /// the residual column used (primal, else dual, else objective).
  std::string efficiency_series;
  std::vector<TimelineEfficiencyRow> efficiency;
  double total_bytes = 0.0;
};

/// Pure analysis of a loaded timeline. `tolerances` is the
/// iterations-to-tolerance threshold list (psra_report --tol), applied to
/// ts.primal_residual and ts.dual_residual where present.
TimelineReport AnalyzeTimeline(const TimelineData& data,
                               const std::vector<double>& tolerances);

/// Markdown: run shape, per-series first/last/min/max, iterations to
/// tolerance, stall/divergence health, rho trajectory, bytes-vs-residual
/// efficiency. Pure function of the report (golden-file friendly).
void WriteTimelineMarkdown(const TimelineReport& report, std::ostream& os);

/// Markdown diff of two analyzed timelines, A (baseline) vs B (candidate):
/// run-shape deltas, final values over the union of series names, and
/// side-by-side iterations-to-tolerance.
void WriteTimelineDiffMarkdown(const TimelineReport& a, const TimelineReport& b,
                               std::ostream& os);

}  // namespace psra::obs
