// Trace/metrics analytics: the READ side of the observability stack.
//
// LoadChromeTrace re-ingests the Chrome trace_event JSON that
// SpanTracer::WriteChromeJson emits (and MetricsFromJson re-ingests
// MetricsRegistry::WriteJson), then AnalyzeTrace turns the span soup into
// the questions the paper cares about:
//
//   - per-phase time breakdown, rolled up into compute / communicate / wait
//     classes (the paper's Cal_time vs Comm_time split, per phase);
//   - the per-iteration critical path: which worker finished each iteration
//     last, and which phases its time went to — the straggler's-eye view
//     that explains the makespan;
//   - per-worker straggler skew (slowest finish over mean finish);
//   - wall-vs-virtual ratio: how many simulated seconds each host second
//     buys, from the Stopwatch wall_s annotations on spans.
//
// Nested spans (scatter_reduce/allgather inside w_allreduce) are detected
// with a cover sweep and excluded from the class totals so time is never
// double-counted; they still appear in the per-phase table with their own
// row. All analysis is pure — a committed trace fixture yields a
// byte-identical report, which is what the golden-file tests pin.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace psra::obs {

/// Phase classes for the compute/communicate/wait rollup.
enum class PhaseClass : std::uint8_t {
  kCompute = 0,
  kCommunicate = 1,
  kWait = 2,
  kOther = 3,
};
inline constexpr std::size_t kNumPhaseClasses = 4;
const char* PhaseClassName(PhaseClass c);
/// Maps a span name to its class (x_update -> compute, w_allreduce ->
/// communicate, gg_wait/ssp_wait/z_wait -> wait, unknown -> other).
PhaseClass ClassifyPhase(std::string_view name);

/// One span re-loaded from a trace artifact. Times are virtual seconds.
struct ReportSpan {
  std::string name;
  double begin = 0.0;
  double end = 0.0;
  std::uint64_t iteration = 0;
  double wall_s = 0.0;
  /// Remote rank for transport-level spans (wire_post / wire_recv); -1 when
  /// the span carries no peer annotation.
  std::int64_t peer = -1;
  /// Transport tag (meaningful only when peer >= 0).
  std::uint64_t tag = 0;
  /// False when the span lies inside the union of earlier spans on its
  /// track (a nested sub-phase); nested spans are excluded from rollups.
  bool top_level = true;
};

struct ReportTrack {
  std::string name;
  std::vector<ReportSpan> spans;  // sorted by (begin, -end)
};

struct TraceData {
  std::vector<ReportTrack> tracks;
};

/// Parses a SpanTracer Chrome trace_event artifact. Throws InvalidArgument
/// on malformed JSON (with the scanner's byte offset) or on structurally
/// alien input (no traceEvents array).
TraceData LoadChromeTrace(std::string_view text);

/// Same, from an already-parsed JSON value (the collection plane embeds the
/// trace as a sub-object of a per-rank payload).
TraceData LoadChromeTrace(const json::Value& root);

/// Parses a MetricsRegistry::WriteJson artifact back into a registry.
/// Throws InvalidArgument on malformed or structurally alien input.
MetricsRegistry MetricsFromJson(std::string_view text);

/// Same, from an already-parsed JSON value.
MetricsRegistry MetricsFromJson(const json::Value& root);

struct PhaseStat {
  std::string name;
  PhaseClass cls = PhaseClass::kOther;
  double virtual_s = 0.0;     // top-level spans only
  double wall_s = 0.0;
  std::uint64_t count = 0;    // all spans, nested included
  bool nested = false;        // true when every occurrence was nested
};

struct TrackStat {
  std::string name;
  double finish = 0.0;     // last span end
  double busy_s = 0.0;     // union of the track's spans
  double wall_s = 0.0;
  /// Spans of this track on the longest blocking chain (see AnalyzeTrace).
  std::uint64_t critical_spans = 0;
};

/// Cross-rank send->recv matching over wire_post/wire_recv peer annotations
/// (k-th post to (src, dst, tag) pairs with the k-th recv — per-peer frame
/// order is FIFO on every backend). All zero for simulator traces.
struct WireEdgeStats {
  std::uint64_t matched = 0;
  std::uint64_t unmatched_posts = 0;
  std::uint64_t unmatched_recvs = 0;
  /// Summed / max post-begin -> recv-end latency over matched edges,
  /// clamped at zero (clock alignment is an estimate).
  double total_latency_s = 0.0;
  double max_latency_s = 0.0;
};

struct TraceReport {
  double horizon = 0.0;          // max span end over all tracks
  std::uint64_t iterations = 0;  // max iteration label seen
  std::size_t num_spans = 0;
  double total_wall_s = 0.0;
  /// Simulated seconds per host second (horizon / total_wall_s; 0 when the
  /// trace carries no wall annotations).
  double sim_speedup = 0.0;
  std::vector<PhaseStat> phases;          // sorted by virtual_s descending
  double class_virtual_s[kNumPhaseClasses] = {};
  double class_wall_s[kNumPhaseClasses] = {};
  std::vector<TrackStat> tracks;
  /// Straggler skew over tracks named "worker*" or "rank*": max finish /
  /// mean finish (1.0 = perfectly balanced; 0 when there are no such
  /// tracks).
  double worker_skew = 0.0;
  std::string slowest_worker;
  /// Phase breakdown along the longest blocking chain: walking backwards
  /// from the last span to finish through same-track ordering, matched
  /// send->recv edges, and collective barriers.
  std::vector<PhaseStat> critical_phases;
  /// Send->recv edge matching stats (wire traces only).
  WireEdgeStats edges;
};

TraceReport AnalyzeTrace(const TraceData& trace);

/// Markdown report: run summary, phase/class tables, per-worker skew,
/// critical path, and (when `metrics` is non-null) the eq. 11-16
/// bytes-on-wire comparison across comm.allreduce.* algorithms.
void WriteReportMarkdown(const TraceReport& report,
                         const MetricsRegistry* metrics, std::ostream& os);

/// Machine-readable companion: one `phase` row per phase plus `class`,
/// `track`, and `critical` rows. Stable ordering for golden-file tests.
void WriteReportCsv(const TraceReport& report, std::ostream& os);

/// Markdown report for a merged wire trace (psra_report --wire): per-rank
/// phase-class breakdown, rank skew/straggler table, send->recv edge
/// matching, the blocking chain, and — when `metrics` is non-null — the
/// wire.* taxonomy plus the measured-vs-simulator counter agreement table
/// (sim.* reference counters recorded by the conformance harness).
void WriteWireReportMarkdown(const TraceData& trace, const TraceReport& report,
                             const MetricsRegistry* metrics, std::ostream& os);

/// Markdown diff of two analyzed runs, A (baseline) vs B (candidate):
/// run-summary deltas, per-phase virtual/wall deltas over the union of
/// phase names (union sorted by |virtual delta| descending so the biggest
/// movement reads first), the class rollup, and — when both metrics
/// registries are present — every counter whose value changed. Output is a
/// pure function of the inputs (golden-file friendly).
void WriteReportDiffMarkdown(const TraceReport& a, const TraceReport& b,
                             const MetricsRegistry* metrics_a,
                             const MetricsRegistry* metrics_b,
                             std::ostream& os);

}  // namespace psra::obs
