// Wire-side observability: the per-rank handle transports and collectives
// record into, plus the serialize/merge path the collection plane uses to
// turn N rank-local views into one artifact pair.
//
// Each rank of a real (socket) run owns one WireObs: a SpanTracer with a
// single "rank N" lane stamped from the local steady clock, and a
// MetricsRegistry holding the wire.* taxonomy (frame-latency histograms,
// per-peer sendq high-water, poll-wait time, partial writes). At collection
// time every non-zero rank serializes its handle to JSON and ships it to
// rank 0 (see comm/wire_obs.hpp); rank 0 parses the payloads, aligns each
// lane by the estimated clock offset, and emits one merged Chrome trace with
// per-rank *process* lanes plus one MergeFrom-aggregated metrics.json.
//
// Everything here is transport-agnostic and pure given its inputs; the
// merged-trace writer is pinned by a golden-file test.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace psra::obs {

/// Bucket bounds (seconds) shared by every wire.* latency/wall histogram —
/// decades from 1 us to 1 s. One fixed set so MergeFrom across ranks (which
/// requires identical bounds) always succeeds.
std::span<const double> WireLatencyBounds();

class WireObs {
 public:
  explicit WireObs(std::uint32_t rank);

  std::uint32_t rank() const { return rank_; }
  /// The single "rank N" lane this handle records into.
  TrackId track() const { return track_; }
  SpanTracer& tracer() { return tracer_; }
  const SpanTracer& tracer() const { return tracer_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Seconds on the local steady clock since this handle was created. Span
  /// begin/end and every wire.* histogram observation use this time base.
  double Now() const;

  /// "wire.rank<r>.<suffix>" — gauges overwrite on MergeFrom, so per-rank
  /// gauges embed the rank in the key to survive the rank-0 aggregation.
  std::string RankKey(std::string_view suffix) const;

  /// Estimated offset of this rank's clock relative to rank 0's (seconds;
  /// subtract from local stamps to align). Written by the collection plane's
  /// NTP-style exchange; 0 until then (and always 0 on rank 0).
  double clock_offset_s = 0.0;

  /// Collective epoch the transport is currently inside. WireCollectives
  /// sets it around each collective so transport-level post/recv spans carry
  /// the same iteration label on every rank; 0 = outside any collective.
  std::uint64_t iteration = 0;

 private:
  std::uint32_t rank_;
  std::chrono::steady_clock::time_point epoch_;
  SpanTracer tracer_;
  MetricsRegistry metrics_;
  TrackId track_;
};

/// One rank's observability state as shipped over the collection plane.
struct RankObsPayload {
  std::uint32_t rank = 0;
  double clock_offset_s = 0.0;
  TraceData trace;
  MetricsRegistry metrics;
};

/// {"rank": N, "clock_offset_s": X, "metrics": {...}, "trace": {...}} — the
/// embedded objects are the registry's WriteJson and the tracer's Chrome
/// JSON verbatim.
std::string SerializeWireObs(const WireObs& obs);

/// Inverse of SerializeWireObs. Throws InvalidArgument on malformed,
/// truncated, or structurally alien input (the collection plane rejects a
/// corrupt rank payload instead of emitting a half-merged artifact).
RankObsPayload ParseWireObsPayload(std::string_view text);

/// Merged Chrome trace: one *process* lane per rank (pid = rank, stable
/// rank-ascending order), globally unique tids, every timestamp shifted by
/// that rank's clock offset (clamped at zero) so lanes share rank 0's time
/// base. Span order within a lane stays begin-sorted, so aligned timestamps
/// are monotonic per lane.
void WriteMergedWireTrace(std::span<const RankObsPayload> ranks,
                          std::ostream& os);

}  // namespace psra::obs
