#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>

#include "obs/json.hpp"
#include "support/status.hpp"
#include "support/string_util.hpp"

namespace psra::obs {

const char* PhaseClassName(PhaseClass c) {
  switch (c) {
    case PhaseClass::kCompute: return "compute";
    case PhaseClass::kCommunicate: return "communicate";
    case PhaseClass::kWait: return "wait";
    case PhaseClass::kOther: return "other";
  }
  return "other";
}

PhaseClass ClassifyPhase(std::string_view name) {
  // Every span name the engines emit, by class. Unknown names (future
  // engines, user harnesses) fall through to kOther rather than failing.
  if (name == "x_update" || name == "z_y_update" || name == "y_update" ||
      name == "z_update" || name == "dual_update") {
    return PhaseClass::kCompute;
  }
  if (name == "w_allreduce" || name == "scatter_reduce" ||
      name == "allgather" || name == "intra_reduce" ||
      name == "w_broadcast" || name == "push_model" ||
      name == "report_send" || name == "reply_send" ||
      name == "recv_report" || name == "gg_report" ||
      name == "group_form" || name == "fault_retry") {
    return PhaseClass::kCommunicate;
  }
  if (name == "gg_wait" || name == "ssp_wait" || name == "z_wait") {
    return PhaseClass::kWait;
  }
  return PhaseClass::kOther;
}

namespace {

double NumberOr(const json::Value* v, double fallback) {
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

/// Sorts a track's spans by (begin asc, end desc) and flags nested spans:
/// a span whose extent lies inside the union of previously accepted
/// top-level spans. Engine spans never partially overlap (marks advance
/// monotonically; SpanAt children sit inside their parent), so the sweep is
/// exact for traces the writers emit — up to the microsecond-text round
/// trip: a child ending exactly at its parent's end reconstructs as
/// begin+dur with a different rounding path, so nesting is judged with one
/// virtual nanosecond of tolerance.
constexpr double kNestEps = 1e-9;

void FlagNested(ReportTrack& track) {
  std::sort(track.spans.begin(), track.spans.end(),
            [](const ReportSpan& a, const ReportSpan& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.end > b.end;
            });
  double cover_end = -1.0;
  for (auto& s : track.spans) {
    if (s.end <= cover_end + kNestEps) {
      s.top_level = false;
    } else {
      s.top_level = true;
      cover_end = s.end;
    }
  }
}

}  // namespace

TraceData LoadChromeTrace(std::string_view text) {
  const json::Value root = json::Parse(text);
  const json::Value* events = root.Find("traceEvents");
  PSRA_REQUIRE(events != nullptr && events->is_array(),
               "trace JSON has no traceEvents array");
  TraceData data;
  auto track_at = [&data](std::size_t tid) -> ReportTrack& {
    if (tid >= data.tracks.size()) {
      const std::size_t old = data.tracks.size();
      data.tracks.resize(tid + 1);
      for (std::size_t t = old; t <= tid; ++t) {
        data.tracks[t].name = "track " + std::to_string(t);
      }
    }
    return data.tracks[tid];
  };
  for (const auto& ev : events->items) {
    const json::Value* ph = ev.Find("ph");
    if (ph == nullptr || !ph->is_string()) continue;
    const auto tid = static_cast<std::size_t>(NumberOr(ev.Find("tid"), 0.0));
    const json::Value* args = ev.Find("args");
    if (ph->str == "M") {
      const json::Value* name = ev.Find("name");
      if (name != nullptr && name->str == "thread_name" && args != nullptr) {
        const json::Value* tname = args->Find("name");
        if (tname != nullptr && tname->is_string()) {
          track_at(tid).name = tname->str;
        }
      }
      continue;
    }
    if (ph->str != "X") continue;
    const json::Value* name = ev.Find("name");
    PSRA_REQUIRE(name != nullptr && name->is_string(),
                 "trace event without a name");
    ReportSpan span;
    span.name = name->str;
    // WriteChromeJson maps virtual seconds to trace microseconds.
    span.begin = NumberOr(ev.Find("ts"), 0.0) / 1e6;
    span.end = span.begin + NumberOr(ev.Find("dur"), 0.0) / 1e6;
    if (args != nullptr) {
      span.iteration =
          static_cast<std::uint64_t>(NumberOr(args->Find("iter"), 0.0));
      span.wall_s = NumberOr(args->Find("wall_us"), 0.0) / 1e6;
    }
    track_at(tid).spans.push_back(std::move(span));
  }
  for (auto& track : data.tracks) FlagNested(track);
  return data;
}

MetricsRegistry MetricsFromJson(std::string_view text) {
  const json::Value root = json::Parse(text);
  PSRA_REQUIRE(root.is_object(), "metrics JSON is not an object");
  MetricsRegistry reg;
  if (const json::Value* counters = root.Find("counters")) {
    PSRA_REQUIRE(counters->is_object(), "metrics counters is not an object");
    for (const auto& [name, v] : counters->members) {
      PSRA_REQUIRE(v.is_number(), "counter value is not a number");
      reg.Counter(name) = static_cast<std::uint64_t>(v.number);
    }
  }
  if (const json::Value* gauges = root.Find("gauges")) {
    PSRA_REQUIRE(gauges->is_object(), "metrics gauges is not an object");
    for (const auto& [name, v] : gauges->members) {
      PSRA_REQUIRE(v.is_number(), "gauge value is not a number");
      reg.Gauge(name) = v.number;
    }
  }
  if (const json::Value* histos = root.Find("histograms")) {
    PSRA_REQUIRE(histos->is_object(), "metrics histograms is not an object");
    for (const auto& [name, v] : histos->members) {
      const json::Value* bounds = v.Find("bounds");
      const json::Value* counts = v.Find("counts");
      PSRA_REQUIRE(bounds != nullptr && bounds->is_array() &&
                       counts != nullptr && counts->is_array() &&
                       counts->items.size() == bounds->items.size() + 1,
                   "histogram shape mismatch");
      std::vector<double> b;
      b.reserve(bounds->items.size());
      for (const auto& x : bounds->items) b.push_back(x.number);
      Histogram& h = reg.Histo(name, b);
      for (std::size_t i = 0; i < counts->items.size(); ++i) {
        h.counts[i] = static_cast<std::uint64_t>(counts->items[i].number);
      }
      h.count = static_cast<std::uint64_t>(NumberOr(v.Find("count"), 0.0));
      h.sum = NumberOr(v.Find("sum"), 0.0);
    }
  }
  return reg;
}

TraceReport AnalyzeTrace(const TraceData& trace) {
  TraceReport r;
  // name -> (stat, saw a top-level occurrence)
  std::map<std::string, PhaseStat> phases;
  std::map<std::string, bool> saw_top;
  for (const auto& track : trace.tracks) {
    TrackStat ts;
    ts.name = track.name;
    double cover_lo = 0.0, cover_hi = -1.0;
    for (const auto& s : track.spans) {
      ++r.num_spans;
      r.horizon = std::max(r.horizon, s.end);
      r.iterations = std::max(r.iterations, s.iteration);
      r.total_wall_s += s.wall_s;
      ts.finish = std::max(ts.finish, s.end);
      ts.wall_s += s.wall_s;
      PhaseStat& p = phases[s.name];
      if (p.count == 0) {
        p.name = s.name;
        p.cls = ClassifyPhase(s.name);
      }
      ++p.count;
      p.wall_s += s.wall_s;
      if (s.top_level) {
        p.virtual_s += s.end - s.begin;
        saw_top[s.name] = true;
        // Spans are (begin, -end)-sorted, so the busy union is one sweep.
        if (s.begin > cover_hi) {
          if (cover_hi > cover_lo) ts.busy_s += cover_hi - cover_lo;
          cover_lo = s.begin;
        }
        cover_hi = std::max(cover_hi, s.end);
      }
    }
    if (cover_hi > cover_lo) ts.busy_s += cover_hi - cover_lo;
    r.tracks.push_back(std::move(ts));
  }

  // Per-iteration critical path: the track whose spans for iteration k end
  // last (ties go to the lower track index) is that iteration's critical
  // worker; its top-level spans for k form the critical-path breakdown.
  std::map<std::uint64_t, std::pair<double, std::size_t>> critical;
  for (std::size_t t = 0; t < trace.tracks.size(); ++t) {
    for (const auto& s : trace.tracks[t].spans) {
      if (s.iteration == 0) continue;
      auto [it, inserted] =
          critical.try_emplace(s.iteration, s.end, t);
      if (!inserted && s.end > it->second.first) it->second = {s.end, t};
    }
  }
  std::map<std::string, PhaseStat> crit_phases;
  for (const auto& [iter, best] : critical) {
    const std::size_t t = best.second;
    ++r.tracks[t].critical_iterations;
    for (const auto& s : trace.tracks[t].spans) {
      if (s.iteration != iter || !s.top_level) continue;
      PhaseStat& p = crit_phases[s.name];
      if (p.count == 0) {
        p.name = s.name;
        p.cls = ClassifyPhase(s.name);
      }
      ++p.count;
      p.virtual_s += s.end - s.begin;
      p.wall_s += s.wall_s;
    }
  }

  auto by_time_desc = [](const PhaseStat& a, const PhaseStat& b) {
    if (a.virtual_s != b.virtual_s) return a.virtual_s > b.virtual_s;
    return a.name < b.name;
  };
  for (auto& [name, p] : phases) {
    p.nested = !saw_top[name];
    const auto c = static_cast<std::size_t>(p.cls);
    r.class_virtual_s[c] += p.virtual_s;
    r.class_wall_s[c] += p.wall_s;
    r.phases.push_back(p);
  }
  std::sort(r.phases.begin(), r.phases.end(), by_time_desc);
  for (auto& [name, p] : crit_phases) r.critical_phases.push_back(p);
  std::sort(r.critical_phases.begin(), r.critical_phases.end(), by_time_desc);

  double worker_sum = 0.0, worker_max = 0.0;
  std::size_t workers = 0;
  for (const auto& ts : r.tracks) {
    if (!StartsWith(ts.name, "worker")) continue;
    ++workers;
    worker_sum += ts.finish;
    if (ts.finish > worker_max) {
      worker_max = ts.finish;
      r.slowest_worker = ts.name;
    }
  }
  if (workers > 0 && worker_sum > 0.0) {
    r.worker_skew = worker_max / (worker_sum / static_cast<double>(workers));
  }
  if (r.total_wall_s > 0.0) r.sim_speedup = r.horizon / r.total_wall_s;
  return r;
}

namespace {

/// Fixed-point percentage (FormatDouble is %g-style and would render 50 as
/// 5e+01 at low precision).
std::string Pct(double part, double whole) {
  if (whole <= 0.0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * part / whole);
  return buf;
}

void PhaseTable(std::ostream& os, const std::vector<PhaseStat>& phases,
                double attributed) {
  os << "| phase | class | virtual s | share | wall s | spans |\n"
     << "|---|---|---:|---:|---:|---:|\n";
  for (const auto& p : phases) {
    os << "| " << p.name << (p.nested ? " (nested)" : "") << " | "
       << PhaseClassName(p.cls) << " | " << FormatDouble(p.virtual_s, 4)
       << " | " << (p.nested ? "-" : Pct(p.virtual_s, attributed)) << " | "
       << FormatDouble(p.wall_s, 4) << " | " << p.count << " |\n";
  }
}

}  // namespace

void WriteReportMarkdown(const TraceReport& r, const MetricsRegistry* metrics,
                         std::ostream& os) {
  double attributed = 0.0;
  for (const double c : r.class_virtual_s) attributed += c;

  os << "# psra run report\n\n## Run summary\n\n"
     << "- tracks: " << r.tracks.size() << ", spans: " << r.num_spans
     << ", iterations: " << r.iterations << "\n"
     << "- virtual makespan: " << FormatDouble(r.horizon, 4)
     << " s; phase-attributed virtual time summed over tracks: "
     << FormatDouble(attributed, 4) << " s\n"
     << "- host wall time on instrumented phases: "
     << FormatDouble(r.total_wall_s, 4) << " s";
  if (r.sim_speedup > 0.0) {
    os << " (" << FormatDouble(r.sim_speedup, 3)
       << " virtual s simulated per wall s)";
  }
  os << "\n\n## Phase breakdown\n\n";
  PhaseTable(os, r.phases, attributed);

  os << "\n## Compute / communicate / wait split\n\n"
     << "| class | virtual s | share | wall s |\n|---|---:|---:|---:|\n";
  for (std::size_t c = 0; c < kNumPhaseClasses; ++c) {
    os << "| " << PhaseClassName(static_cast<PhaseClass>(c)) << " | "
       << FormatDouble(r.class_virtual_s[c], 4) << " | "
       << Pct(r.class_virtual_s[c], attributed) << " | "
       << FormatDouble(r.class_wall_s[c], 4) << " |\n";
  }

  os << "\n## Workers\n\n"
     << "| track | finish s | busy s | idle | wall s | critical iters |\n"
     << "|---|---:|---:|---:|---:|---:|\n";
  for (const auto& t : r.tracks) {
    os << "| " << t.name << " | " << FormatDouble(t.finish, 4) << " | "
       << FormatDouble(t.busy_s, 4) << " | "
       << (t.finish > 0.0 ? Pct(t.finish - t.busy_s, t.finish) : "-") << " | "
       << FormatDouble(t.wall_s, 4) << " | " << t.critical_iterations
       << " |\n";
  }
  if (r.worker_skew > 0.0) {
    os << "\nStraggler skew (max finish / mean finish over workers): "
       << FormatDouble(r.worker_skew, 4) << " (slowest: " << r.slowest_worker
       << ")\n";
  }

  os << "\n## Critical path\n\nUnion over iterations of the worker that"
        " finished each iteration last:\n\n";
  double crit_total = 0.0;
  for (const auto& p : r.critical_phases) crit_total += p.virtual_s;
  PhaseTable(os, r.critical_phases, crit_total);

  if (metrics != nullptr) {
    os << "\n## Bytes on wire (eq. 11-16)\n\n"
       << "| algorithm | bytes | elements | messages | rounds |"
          " invocations |\n|---|---:|---:|---:|---:|---:|\n";
    const auto& counters = metrics->counters();
    auto counter = [&counters](const std::string& name) -> std::uint64_t {
      const auto it = counters.find(name);
      return it == counters.end() ? 0 : it->second;
    };
    for (const auto& [name, bytes] : counters) {
      constexpr std::string_view kPrefix = "comm.allreduce.";
      constexpr std::string_view kSuffix = ".bytes";
      if (!StartsWith(name, kPrefix) || name.size() <= kSuffix.size() ||
          name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                       kSuffix) != 0) {
        continue;
      }
      const std::string alg = name.substr(
          kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
      const std::string p = std::string(kPrefix) + alg + ".";
      os << "| " << alg << " | " << bytes << " | "
         << counter(p + "elements") << " | " << counter(p + "messages")
         << " | " << counter(p + "rounds") << " | "
         << counter(p + "invocations") << " |\n";
    }
    const std::uint64_t psr = counter("comm.allreduce.psr.bytes");
    const std::uint64_t ring = counter("comm.allreduce.ring.bytes");
    if (psr > 0 && ring > 0) {
      os << "\nPSR < Ring bytes-on-wire: " << (psr < ring ? "yes" : "NO")
         << " (psr " << psr << " vs ring " << ring << ")\n";
    }
  }
}

void WriteReportCsv(const TraceReport& r, std::ostream& os) {
  os << "row,name,class,virtual_s,wall_s,count\n";
  os << "summary,horizon," << r.iterations << ","
     << FormatDouble(r.horizon, 9) << "," << FormatDouble(r.total_wall_s, 9)
     << "," << r.num_spans << "\n";
  for (const auto& p : r.phases) {
    os << "phase," << p.name << "," << PhaseClassName(p.cls) << ","
       << FormatDouble(p.virtual_s, 9) << "," << FormatDouble(p.wall_s, 9)
       << "," << p.count << "\n";
  }
  for (std::size_t c = 0; c < kNumPhaseClasses; ++c) {
    os << "class," << PhaseClassName(static_cast<PhaseClass>(c)) << ","
       << PhaseClassName(static_cast<PhaseClass>(c)) << ","
       << FormatDouble(r.class_virtual_s[c], 9) << ","
       << FormatDouble(r.class_wall_s[c], 9) << ",\n";
  }
  for (const auto& t : r.tracks) {
    os << "track," << t.name << ",," << FormatDouble(t.busy_s, 9) << ","
       << FormatDouble(t.wall_s, 9) << "," << t.critical_iterations << "\n";
  }
  for (const auto& p : r.critical_phases) {
    os << "critical," << p.name << "," << PhaseClassName(p.cls) << ","
       << FormatDouble(p.virtual_s, 9) << "," << FormatDouble(p.wall_s, 9)
       << "," << p.count << "\n";
  }
}

namespace {

/// Signed delta with an explicit "+" so a diff row reads as a change, not a
/// value.
std::string Signed(double delta, int precision) {
  std::string s = FormatDouble(delta, precision);
  if (delta > 0.0) s.insert(s.begin(), '+');
  return s;
}

/// Signed integer delta (counters, span/iteration counts): %g would fall
/// into scientific notation on large counts.
std::string SignedInt(std::uint64_t a, std::uint64_t b) {
  const auto delta =
      static_cast<long long>(b) - static_cast<long long>(a);
  std::string s = std::to_string(delta);
  if (delta > 0) s.insert(s.begin(), '+');
  return s;
}

/// Relative change B vs A; "-" when A is zero (new phase / division by
/// zero), unsigned "0.0%" when nothing moved so a no-change diff carries no
/// spurious signs.
std::string RelPct(double a, double b) {
  if (a == 0.0) return "-";
  if (a == b) return "0.0%";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", (b - a) / a * 100.0);
  return buf;
}

struct DiffRow {
  std::string name;
  PhaseClass cls = PhaseClass::kOther;
  double virtual_a = 0.0, virtual_b = 0.0;
  double wall_a = 0.0, wall_b = 0.0;
  bool in_a = false, in_b = false;
};

}  // namespace

void WriteReportDiffMarkdown(const TraceReport& a, const TraceReport& b,
                             const MetricsRegistry* metrics_a,
                             const MetricsRegistry* metrics_b,
                             std::ostream& os) {
  os << "# psra run diff (A = baseline, B = candidate)\n\n## Run summary\n\n"
     << "| quantity | A | B | delta | rel |\n|---|---:|---:|---:|---:|\n"
     << "| virtual makespan s | " << FormatDouble(a.horizon, 4) << " | "
     << FormatDouble(b.horizon, 4) << " | " << Signed(b.horizon - a.horizon, 4)
     << " | " << RelPct(a.horizon, b.horizon) << " |\n"
     << "| host wall s | " << FormatDouble(a.total_wall_s, 4) << " | "
     << FormatDouble(b.total_wall_s, 4) << " | "
     << Signed(b.total_wall_s - a.total_wall_s, 4) << " | "
     << RelPct(a.total_wall_s, b.total_wall_s) << " |\n"
     << "| sim speedup | " << FormatDouble(a.sim_speedup, 3) << " | "
     << FormatDouble(b.sim_speedup, 3) << " | "
     << Signed(b.sim_speedup - a.sim_speedup, 3) << " | "
     << RelPct(a.sim_speedup, b.sim_speedup) << " |\n"
     << "| iterations | " << a.iterations << " | " << b.iterations << " | "
     << SignedInt(a.iterations, b.iterations) << " | - |\n"
     << "| spans | " << a.num_spans << " | " << b.num_spans << " | "
     << SignedInt(a.num_spans, b.num_spans) << " | - |\n"
     << "| worker skew | " << FormatDouble(a.worker_skew, 4) << " | "
     << FormatDouble(b.worker_skew, 4) << " | "
     << Signed(b.worker_skew - a.worker_skew, 4) << " | - |\n";

  // Union of phase names; map keeps the merge deterministic, the final sort
  // puts the biggest virtual-time movement first.
  std::map<std::string, DiffRow> merged;
  for (const auto& p : a.phases) {
    DiffRow& row = merged[p.name];
    row.name = p.name;
    row.cls = p.cls;
    row.virtual_a = p.virtual_s;
    row.wall_a = p.wall_s;
    row.in_a = true;
  }
  for (const auto& p : b.phases) {
    DiffRow& row = merged[p.name];
    row.name = p.name;
    row.cls = p.cls;
    row.virtual_b = p.virtual_s;
    row.wall_b = p.wall_s;
    row.in_b = true;
  }
  std::vector<DiffRow> rows;
  rows.reserve(merged.size());
  for (auto& [name, row] : merged) rows.push_back(std::move(row));
  std::sort(rows.begin(), rows.end(), [](const DiffRow& x, const DiffRow& y) {
    const double dx = std::abs(x.virtual_b - x.virtual_a);
    const double dy = std::abs(y.virtual_b - y.virtual_a);
    if (dx != dy) return dx > dy;
    return x.name < y.name;
  });

  os << "\n## Phase deltas\n\n"
     << "| phase | class | virtual A s | virtual B s | delta | rel |"
        " wall A s | wall B s | wall delta |\n"
     << "|---|---|---:|---:|---:|---:|---:|---:|---:|\n";
  for (const auto& row : rows) {
    os << "| " << row.name;
    if (!row.in_a) os << " (B only)";
    if (!row.in_b) os << " (A only)";
    os << " | " << PhaseClassName(row.cls) << " | "
       << FormatDouble(row.virtual_a, 4) << " | "
       << FormatDouble(row.virtual_b, 4) << " | "
       << Signed(row.virtual_b - row.virtual_a, 4) << " | "
       << RelPct(row.virtual_a, row.virtual_b) << " | "
       << FormatDouble(row.wall_a, 4) << " | " << FormatDouble(row.wall_b, 4)
       << " | " << Signed(row.wall_b - row.wall_a, 4) << " |\n";
  }

  os << "\n## Class deltas\n\n"
     << "| class | virtual A s | virtual B s | delta | rel | wall A s |"
        " wall B s | wall delta |\n|---|---:|---:|---:|---:|---:|---:|---:|\n";
  for (std::size_t c = 0; c < kNumPhaseClasses; ++c) {
    os << "| " << PhaseClassName(static_cast<PhaseClass>(c)) << " | "
       << FormatDouble(a.class_virtual_s[c], 4) << " | "
       << FormatDouble(b.class_virtual_s[c], 4) << " | "
       << Signed(b.class_virtual_s[c] - a.class_virtual_s[c], 4) << " | "
       << RelPct(a.class_virtual_s[c], b.class_virtual_s[c]) << " | "
       << FormatDouble(a.class_wall_s[c], 4) << " | "
       << FormatDouble(b.class_wall_s[c], 4) << " | "
       << Signed(b.class_wall_s[c] - a.class_wall_s[c], 4) << " |\n";
  }

  if (metrics_a != nullptr && metrics_b != nullptr) {
    // Counters whose values differ, over the union of names. Identical
    // counters are summarized in one line: the interesting diff output is
    // what changed, and "N unchanged" pins that the rest really matched.
    const auto& ca = metrics_a->counters();
    const auto& cb = metrics_b->counters();
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> all;
    for (const auto& [name, v] : ca) all[name].first = v;
    for (const auto& [name, v] : cb) all[name].second = v;
    std::size_t unchanged = 0;
    os << "\n## Counter deltas\n\n"
       << "| counter | A | B | delta |\n|---|---:|---:|---:|\n";
    for (const auto& [name, v] : all) {
      if (v.first == v.second) {
        ++unchanged;
        continue;
      }
      os << "| " << name << " | " << v.first << " | " << v.second << " | "
         << SignedInt(v.first, v.second) << " |\n";
    }
    os << "\n" << unchanged << " counters unchanged.\n";
  }
}

}  // namespace psra::obs
