#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <limits>
#include <map>
#include <optional>
#include <ostream>
#include <set>
#include <tuple>

#include "obs/json.hpp"
#include "support/status.hpp"
#include "support/string_util.hpp"

namespace psra::obs {

const char* PhaseClassName(PhaseClass c) {
  switch (c) {
    case PhaseClass::kCompute: return "compute";
    case PhaseClass::kCommunicate: return "communicate";
    case PhaseClass::kWait: return "wait";
    case PhaseClass::kOther: return "other";
  }
  return "other";
}

PhaseClass ClassifyPhase(std::string_view name) {
  // Every span name the engines emit, by class. Unknown names (future
  // engines, user harnesses) fall through to kOther rather than failing.
  if (name == "x_update" || name == "z_y_update" || name == "y_update" ||
      name == "z_update" || name == "dual_update") {
    return PhaseClass::kCompute;
  }
  if (name == "w_allreduce" || name == "scatter_reduce" ||
      name == "allgather" || name == "intra_reduce" ||
      name == "w_broadcast" || name == "push_model" ||
      name == "report_send" || name == "reply_send" ||
      name == "recv_report" || name == "gg_report" ||
      name == "group_form" || name == "fault_retry" ||
      // wire-side (real transport) span names
      name == "wire_allreduce" || name == "wire_multilevel" ||
      name == "wire_post" || name == "gather" || name == "broadcast" ||
      name == "redistribute") {
    return PhaseClass::kCommunicate;
  }
  if (name == "gg_wait" || name == "ssp_wait" || name == "z_wait" ||
      name == "wire_recv" || name == "wire_fence") {
    return PhaseClass::kWait;
  }
  return PhaseClass::kOther;
}

namespace {

double NumberOr(const json::Value* v, double fallback) {
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

/// Sorts a track's spans by (begin asc, end desc) and flags nested spans:
/// a span whose extent lies inside the union of previously accepted
/// top-level spans. Engine spans never partially overlap (marks advance
/// monotonically; SpanAt children sit inside their parent), so the sweep is
/// exact for traces the writers emit — up to the microsecond-text round
/// trip: a child ending exactly at its parent's end reconstructs as
/// begin+dur with a different rounding path, so nesting is judged with one
/// virtual nanosecond of tolerance.
constexpr double kNestEps = 1e-9;

/// Location of a span inside a TraceData.
struct SpanRef {
  std::size_t track = 0;
  std::size_t span = 0;
  bool operator==(const SpanRef& o) const {
    return track == o.track && span == o.span;
  }
  bool operator<(const SpanRef& o) const {
    return track != o.track ? track < o.track : span < o.span;
  }
};

/// Parses the rank out of a wire lane name ("rank 3"); -1 when the track is
/// not a rank lane. Edge matching needs the lane -> transport-rank mapping.
std::int64_t TrackRank(std::string_view name) {
  if (!StartsWith(name, "rank")) return -1;
  std::string_view rest = name.substr(4);
  if (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  if (rest.empty()) return -1;
  std::int64_t rank = 0;
  for (const char c : rest) {
    if (c < '0' || c > '9') return -1;
    rank = rank * 10 + (c - '0');
  }
  return rank;
}

void FlagNested(ReportTrack& track) {
  std::sort(track.spans.begin(), track.spans.end(),
            [](const ReportSpan& a, const ReportSpan& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.end > b.end;
            });
  double cover_end = -1.0;
  for (auto& s : track.spans) {
    if (s.end <= cover_end + kNestEps) {
      s.top_level = false;
    } else {
      s.top_level = true;
      cover_end = s.end;
    }
  }
}

}  // namespace

TraceData LoadChromeTrace(std::string_view text) {
  return LoadChromeTrace(json::Parse(text));
}

TraceData LoadChromeTrace(const json::Value& root) {
  const json::Value* events = root.Find("traceEvents");
  PSRA_REQUIRE(events != nullptr && events->is_array(),
               "trace JSON has no traceEvents array");
  TraceData data;
  auto track_at = [&data](std::size_t tid) -> ReportTrack& {
    if (tid >= data.tracks.size()) {
      const std::size_t old = data.tracks.size();
      data.tracks.resize(tid + 1);
      for (std::size_t t = old; t <= tid; ++t) {
        data.tracks[t].name = "track " + std::to_string(t);
      }
    }
    return data.tracks[tid];
  };
  for (const auto& ev : events->items) {
    const json::Value* ph = ev.Find("ph");
    if (ph == nullptr || !ph->is_string()) continue;
    const auto tid = static_cast<std::size_t>(NumberOr(ev.Find("tid"), 0.0));
    const json::Value* args = ev.Find("args");
    if (ph->str == "M") {
      const json::Value* name = ev.Find("name");
      if (name != nullptr && name->str == "thread_name" && args != nullptr) {
        const json::Value* tname = args->Find("name");
        if (tname != nullptr && tname->is_string()) {
          track_at(tid).name = tname->str;
        }
      }
      continue;
    }
    if (ph->str != "X") continue;
    const json::Value* name = ev.Find("name");
    PSRA_REQUIRE(name != nullptr && name->is_string(),
                 "trace event without a name");
    ReportSpan span;
    span.name = name->str;
    // WriteChromeJson maps virtual seconds to trace microseconds.
    span.begin = NumberOr(ev.Find("ts"), 0.0) / 1e6;
    span.end = span.begin + NumberOr(ev.Find("dur"), 0.0) / 1e6;
    if (args != nullptr) {
      span.iteration =
          static_cast<std::uint64_t>(NumberOr(args->Find("iter"), 0.0));
      span.wall_s = NumberOr(args->Find("wall_us"), 0.0) / 1e6;
      span.peer = static_cast<std::int64_t>(NumberOr(args->Find("peer"), -1.0));
      span.tag = static_cast<std::uint64_t>(NumberOr(args->Find("tag"), 0.0));
    }
    track_at(tid).spans.push_back(std::move(span));
  }
  for (auto& track : data.tracks) FlagNested(track);
  return data;
}

MetricsRegistry MetricsFromJson(std::string_view text) {
  return MetricsFromJson(json::Parse(text));
}

MetricsRegistry MetricsFromJson(const json::Value& root) {
  PSRA_REQUIRE(root.is_object(), "metrics JSON is not an object");
  MetricsRegistry reg;
  if (const json::Value* counters = root.Find("counters")) {
    PSRA_REQUIRE(counters->is_object(), "metrics counters is not an object");
    for (const auto& [name, v] : counters->members) {
      PSRA_REQUIRE(v.is_number(), "counter value is not a number");
      reg.Counter(name) = static_cast<std::uint64_t>(v.number);
    }
  }
  if (const json::Value* gauges = root.Find("gauges")) {
    PSRA_REQUIRE(gauges->is_object(), "metrics gauges is not an object");
    for (const auto& [name, v] : gauges->members) {
      PSRA_REQUIRE(v.is_number(), "gauge value is not a number");
      reg.Gauge(name) = v.number;
    }
  }
  if (const json::Value* histos = root.Find("histograms")) {
    PSRA_REQUIRE(histos->is_object(), "metrics histograms is not an object");
    for (const auto& [name, v] : histos->members) {
      const json::Value* bounds = v.Find("bounds");
      const json::Value* counts = v.Find("counts");
      PSRA_REQUIRE(bounds != nullptr && bounds->is_array() &&
                       counts != nullptr && counts->is_array() &&
                       counts->items.size() == bounds->items.size() + 1,
                   "histogram shape mismatch");
      std::vector<double> b;
      b.reserve(bounds->items.size());
      for (const auto& x : bounds->items) b.push_back(x.number);
      Histogram& h = reg.Histo(name, b);
      for (std::size_t i = 0; i < counts->items.size(); ++i) {
        h.counts[i] = static_cast<std::uint64_t>(counts->items[i].number);
      }
      h.count = static_cast<std::uint64_t>(NumberOr(v.Find("count"), 0.0));
      h.sum = NumberOr(v.Find("sum"), 0.0);
    }
  }
  return reg;
}

TraceReport AnalyzeTrace(const TraceData& trace) {
  TraceReport r;
  // name -> (stat, saw a top-level occurrence)
  std::map<std::string, PhaseStat> phases;
  std::map<std::string, bool> saw_top;
  for (const auto& track : trace.tracks) {
    TrackStat ts;
    ts.name = track.name;
    double cover_lo = 0.0, cover_hi = -1.0;
    for (const auto& s : track.spans) {
      ++r.num_spans;
      r.horizon = std::max(r.horizon, s.end);
      r.iterations = std::max(r.iterations, s.iteration);
      r.total_wall_s += s.wall_s;
      ts.finish = std::max(ts.finish, s.end);
      ts.wall_s += s.wall_s;
      PhaseStat& p = phases[s.name];
      if (p.count == 0) {
        p.name = s.name;
        p.cls = ClassifyPhase(s.name);
      }
      ++p.count;
      p.wall_s += s.wall_s;
      if (s.top_level) {
        p.virtual_s += s.end - s.begin;
        saw_top[s.name] = true;
        // Spans are (begin, -end)-sorted, so the busy union is one sweep.
        if (s.begin > cover_hi) {
          if (cover_hi > cover_lo) ts.busy_s += cover_hi - cover_lo;
          cover_lo = s.begin;
        }
        cover_hi = std::max(cover_hi, s.end);
      }
    }
    if (cover_hi > cover_lo) ts.busy_s += cover_hi - cover_lo;
    r.tracks.push_back(std::move(ts));
  }

  // ---- longest blocking chain (critical path) ---------------------------
  // Nodes are top-level spans. Walk backwards from the span that ends the
  // run; at each step jump to whatever the current span plausibly waited on:
  //   - the preceding top-level span on the same track (program order);
  //   - the posting span of any message this span (or a span nested inside
  //     it) received, matched k-th-post-to-k-th-recv per (src, dst, tag)
  //     from the wire_post/wire_recv peer annotations (frame order is FIFO
  //     per peer on every backend);
  //   - for barrier-style collectives — a communicate-class (name, iter)
  //     present on >= 2 tracks — the last participant to arrive: the chain
  //     continues from that track's preceding span.
  // Among the candidates the latest-ending unvisited one wins (message
  // exchanges are bidirectional inside an allreduce, so a visited set
  // guards cycles). Sim traces carry no peer annotations; there the chain
  // degenerates to program order plus barrier jumps.
  const std::size_t num_tracks = trace.tracks.size();
  std::vector<std::vector<std::size_t>> top(num_tracks);
  std::vector<std::vector<SpanRef>> encl(num_tracks);
  for (std::size_t t = 0; t < num_tracks; ++t) {
    const auto& spans = trace.tracks[t].spans;
    encl[t].resize(spans.size());
    SpanRef cur{t, 0};
    for (std::size_t i = 0; i < spans.size(); ++i) {
      if (spans[i].top_level) {
        cur = SpanRef{t, i};
        top[t].push_back(i);
      }
      encl[t][i] = cur;  // spans are (begin, -end)-sorted, so the last
                         // top-level span seen encloses what follows
    }
  }
  auto span_at = [&trace](SpanRef ref) -> const ReportSpan& {
    return trace.tracks[ref.track].spans[ref.span];
  };

  // Send->recv edge matching across rank lanes.
  std::map<std::int64_t, std::size_t> rank_track;
  for (std::size_t t = 0; t < num_tracks; ++t) {
    const std::int64_t rank = TrackRank(trace.tracks[t].name);
    if (rank >= 0) rank_track.emplace(rank, t);
  }
  std::map<std::tuple<std::int64_t, std::int64_t, std::uint64_t>,
           std::deque<SpanRef>>
      posts;
  for (const auto& [rank, t] : rank_track) {
    const auto& spans = trace.tracks[t].spans;
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const auto& s = spans[i];
      if (s.peer >= 0 && s.name == "wire_post") {
        posts[{rank, s.peer, s.tag}].push_back(SpanRef{t, i});
      }
    }
  }
  std::map<SpanRef, SpanRef> msg_pred;  // dst top-level -> latest src top-level
  for (const auto& [rank, t] : rank_track) {
    const auto& spans = trace.tracks[t].spans;
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const auto& s = spans[i];
      if (s.peer < 0 || s.name != "wire_recv") continue;
      const auto it = posts.find({s.peer, rank, s.tag});
      if (it == posts.end() || it->second.empty()) {
        ++r.edges.unmatched_recvs;
        continue;
      }
      const SpanRef post = it->second.front();
      it->second.pop_front();
      ++r.edges.matched;
      const double latency = std::max(0.0, s.end - span_at(post).begin);
      r.edges.total_latency_s += latency;
      r.edges.max_latency_s = std::max(r.edges.max_latency_s, latency);
      const SpanRef dst_top = encl[t][i];
      const SpanRef src_top = encl[post.track][post.span];
      if (src_top == dst_top) continue;
      auto [mit, inserted] = msg_pred.try_emplace(dst_top, src_top);
      if (!inserted && span_at(src_top).end > span_at(mit->second).end) {
        mit->second = src_top;
      }
    }
  }
  for (const auto& [key, queue] : posts) {
    r.edges.unmatched_posts += queue.size();
  }

  // Barrier groups: member -> last arrival (max begin, ties lower track).
  std::map<std::pair<std::string, std::uint64_t>, std::vector<SpanRef>> groups;
  for (std::size_t t = 0; t < num_tracks; ++t) {
    for (const std::size_t i : top[t]) {
      const auto& s = trace.tracks[t].spans[i];
      if (s.iteration > 0 && ClassifyPhase(s.name) == PhaseClass::kCommunicate)
        groups[{s.name, s.iteration}].push_back(SpanRef{t, i});
    }
  }
  std::map<SpanRef, SpanRef> barrier_last;
  for (const auto& [key, members] : groups) {
    bool multi_track = false;
    SpanRef last = members.front();
    for (const SpanRef m : members) {
      if (m.track != members.front().track) multi_track = true;
      if (span_at(m).begin > span_at(last).begin) last = m;
    }
    if (!multi_track) continue;
    for (const SpanRef m : members) barrier_last.emplace(m, last);
  }

  auto prev_top = [&top](SpanRef ref) -> std::optional<SpanRef> {
    const auto& v = top[ref.track];
    const auto it = std::lower_bound(v.begin(), v.end(), ref.span);
    if (it == v.end() || *it != ref.span || it == v.begin()) return {};
    return SpanRef{ref.track, *(it - 1)};
  };
  std::optional<SpanRef> cur;
  for (std::size_t t = 0; t < num_tracks; ++t) {
    for (const std::size_t i : top[t]) {
      if (!cur || trace.tracks[t].spans[i].end > span_at(*cur).end) {
        cur = SpanRef{t, i};
      }
    }
  }
  std::set<SpanRef> visited;
  std::map<std::string, PhaseStat> crit_phases;
  while (cur) {
    visited.insert(*cur);
    const ReportSpan& s = span_at(*cur);
    ++r.tracks[cur->track].critical_spans;
    PhaseStat& p = crit_phases[s.name];
    if (p.count == 0) {
      p.name = s.name;
      p.cls = ClassifyPhase(s.name);
    }
    ++p.count;
    p.virtual_s += s.end - s.begin;
    p.wall_s += s.wall_s;

    std::optional<SpanRef> best;
    auto consider = [&](std::optional<SpanRef> c) {
      if (!c || visited.contains(*c)) return;
      if (!best) {
        best = c;
        return;
      }
      const ReportSpan& cs = span_at(*c);
      const ReportSpan& bs = span_at(*best);
      if (cs.end > bs.end || (cs.end == bs.end && *c < *best)) best = c;
    };
    consider(prev_top(*cur));
    if (const auto mp = msg_pred.find(*cur); mp != msg_pred.end()) {
      const SpanRef cand = mp->second;
      const ReportSpan& cand_s = span_at(cand);
      if (cand.track != cur->track && cand_s.name == s.name &&
          cand_s.iteration == s.iteration) {
        // The sender is inside the same collective on a peer lane; continue
        // from what that lane was doing before (counting the collective once
        // is enough).
        consider(prev_top(cand));
      } else {
        consider(cand);
      }
    }
    if (const auto bl = barrier_last.find(*cur);
        bl != barrier_last.end() && !(bl->second == *cur)) {
      consider(prev_top(bl->second));
    }
    cur = best;
  }

  auto by_time_desc = [](const PhaseStat& a, const PhaseStat& b) {
    if (a.virtual_s != b.virtual_s) return a.virtual_s > b.virtual_s;
    return a.name < b.name;
  };
  for (auto& [name, p] : phases) {
    p.nested = !saw_top[name];
    const auto c = static_cast<std::size_t>(p.cls);
    r.class_virtual_s[c] += p.virtual_s;
    r.class_wall_s[c] += p.wall_s;
    r.phases.push_back(p);
  }
  std::sort(r.phases.begin(), r.phases.end(), by_time_desc);
  for (auto& [name, p] : crit_phases) r.critical_phases.push_back(p);
  std::sort(r.critical_phases.begin(), r.critical_phases.end(), by_time_desc);

  double worker_sum = 0.0, worker_max = 0.0;
  std::size_t workers = 0;
  for (const auto& ts : r.tracks) {
    if (!StartsWith(ts.name, "worker") && !StartsWith(ts.name, "rank")) {
      continue;
    }
    ++workers;
    worker_sum += ts.finish;
    if (ts.finish > worker_max) {
      worker_max = ts.finish;
      r.slowest_worker = ts.name;
    }
  }
  if (workers > 0 && worker_sum > 0.0) {
    r.worker_skew = worker_max / (worker_sum / static_cast<double>(workers));
  }
  if (r.total_wall_s > 0.0) r.sim_speedup = r.horizon / r.total_wall_s;
  return r;
}

namespace {

/// Fixed-point percentage (FormatDouble is %g-style and would render 50 as
/// 5e+01 at low precision).
std::string Pct(double part, double whole) {
  if (whole <= 0.0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * part / whole);
  return buf;
}

void PhaseTable(std::ostream& os, const std::vector<PhaseStat>& phases,
                double attributed) {
  os << "| phase | class | virtual s | share | wall s | spans |\n"
     << "|---|---|---:|---:|---:|---:|\n";
  for (const auto& p : phases) {
    os << "| " << p.name << (p.nested ? " (nested)" : "") << " | "
       << PhaseClassName(p.cls) << " | " << FormatDouble(p.virtual_s, 4)
       << " | " << (p.nested ? "-" : Pct(p.virtual_s, attributed)) << " | "
       << FormatDouble(p.wall_s, 4) << " | " << p.count << " |\n";
  }
}

}  // namespace

void WriteReportMarkdown(const TraceReport& r, const MetricsRegistry* metrics,
                         std::ostream& os) {
  double attributed = 0.0;
  for (const double c : r.class_virtual_s) attributed += c;

  os << "# psra run report\n\n## Run summary\n\n"
     << "- tracks: " << r.tracks.size() << ", spans: " << r.num_spans
     << ", iterations: " << r.iterations << "\n"
     << "- virtual makespan: " << FormatDouble(r.horizon, 4)
     << " s; phase-attributed virtual time summed over tracks: "
     << FormatDouble(attributed, 4) << " s\n"
     << "- host wall time on instrumented phases: "
     << FormatDouble(r.total_wall_s, 4) << " s";
  if (r.sim_speedup > 0.0) {
    os << " (" << FormatDouble(r.sim_speedup, 3)
       << " virtual s simulated per wall s)";
  }
  os << "\n\n## Phase breakdown\n\n";
  PhaseTable(os, r.phases, attributed);

  os << "\n## Compute / communicate / wait split\n\n"
     << "| class | virtual s | share | wall s |\n|---|---:|---:|---:|\n";
  for (std::size_t c = 0; c < kNumPhaseClasses; ++c) {
    os << "| " << PhaseClassName(static_cast<PhaseClass>(c)) << " | "
       << FormatDouble(r.class_virtual_s[c], 4) << " | "
       << Pct(r.class_virtual_s[c], attributed) << " | "
       << FormatDouble(r.class_wall_s[c], 4) << " |\n";
  }

  os << "\n## Workers\n\n"
     << "| track | finish s | busy s | idle | wall s | critical spans |\n"
     << "|---|---:|---:|---:|---:|---:|\n";
  for (const auto& t : r.tracks) {
    os << "| " << t.name << " | " << FormatDouble(t.finish, 4) << " | "
       << FormatDouble(t.busy_s, 4) << " | "
       << (t.finish > 0.0 ? Pct(t.finish - t.busy_s, t.finish) : "-") << " | "
       << FormatDouble(t.wall_s, 4) << " | " << t.critical_spans
       << " |\n";
  }
  if (r.worker_skew > 0.0) {
    os << "\nStraggler skew (max finish / mean finish over workers): "
       << FormatDouble(r.worker_skew, 4) << " (slowest: " << r.slowest_worker
       << ")\n";
  }

  os << "\n## Critical path\n\nLongest blocking chain ending at the last"
        " span to finish (program order, matched send->recv edges, and"
        " collective barriers):\n\n";
  double crit_total = 0.0;
  for (const auto& p : r.critical_phases) crit_total += p.virtual_s;
  PhaseTable(os, r.critical_phases, crit_total);

  if (metrics != nullptr) {
    os << "\n## Bytes on wire (eq. 11-16)\n\n"
       << "| algorithm | bytes | elements | messages | rounds |"
          " invocations |\n|---|---:|---:|---:|---:|---:|\n";
    const auto& counters = metrics->counters();
    auto counter = [&counters](const std::string& name) -> std::uint64_t {
      const auto it = counters.find(name);
      return it == counters.end() ? 0 : it->second;
    };
    for (const auto& [name, bytes] : counters) {
      constexpr std::string_view kPrefix = "comm.allreduce.";
      constexpr std::string_view kSuffix = ".bytes";
      if (!StartsWith(name, kPrefix) || name.size() <= kSuffix.size() ||
          name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                       kSuffix) != 0) {
        continue;
      }
      const std::string alg = name.substr(
          kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
      const std::string p = std::string(kPrefix) + alg + ".";
      os << "| " << alg << " | " << bytes << " | "
         << counter(p + "elements") << " | " << counter(p + "messages")
         << " | " << counter(p + "rounds") << " | "
         << counter(p + "invocations") << " |\n";
    }
    const std::uint64_t psr = counter("comm.allreduce.psr.bytes");
    const std::uint64_t ring = counter("comm.allreduce.ring.bytes");
    if (psr > 0 && ring > 0) {
      os << "\nPSR < Ring bytes-on-wire: " << (psr < ring ? "yes" : "NO")
         << " (psr " << psr << " vs ring " << ring << ")\n";
    }
  }
}

void WriteReportCsv(const TraceReport& r, std::ostream& os) {
  os << "row,name,class,virtual_s,wall_s,count\n";
  os << "summary,horizon," << r.iterations << ","
     << FormatDouble(r.horizon, 9) << "," << FormatDouble(r.total_wall_s, 9)
     << "," << r.num_spans << "\n";
  for (const auto& p : r.phases) {
    os << "phase," << p.name << "," << PhaseClassName(p.cls) << ","
       << FormatDouble(p.virtual_s, 9) << "," << FormatDouble(p.wall_s, 9)
       << "," << p.count << "\n";
  }
  for (std::size_t c = 0; c < kNumPhaseClasses; ++c) {
    os << "class," << PhaseClassName(static_cast<PhaseClass>(c)) << ","
       << PhaseClassName(static_cast<PhaseClass>(c)) << ","
       << FormatDouble(r.class_virtual_s[c], 9) << ","
       << FormatDouble(r.class_wall_s[c], 9) << ",\n";
  }
  for (const auto& t : r.tracks) {
    os << "track," << t.name << ",," << FormatDouble(t.busy_s, 9) << ","
       << FormatDouble(t.wall_s, 9) << "," << t.critical_spans << "\n";
  }
  for (const auto& p : r.critical_phases) {
    os << "critical," << p.name << "," << PhaseClassName(p.cls) << ","
       << FormatDouble(p.virtual_s, 9) << "," << FormatDouble(p.wall_s, 9)
       << "," << p.count << "\n";
  }
}

void WriteWireReportMarkdown(const TraceData& trace, const TraceReport& r,
                             const MetricsRegistry* metrics,
                             std::ostream& os) {
  os << "# psra wire run report\n\n## Run summary\n\n";
  std::size_t rank_lanes = 0;
  for (const auto& track : trace.tracks) {
    if (TrackRank(track.name) >= 0) ++rank_lanes;
  }
  os << "- rank lanes: " << rank_lanes << " (tracks: " << r.tracks.size()
     << "), spans: " << r.num_spans << ", collectives: " << r.iterations
     << "\n- wall makespan: " << FormatDouble(r.horizon, 6) << " s\n";

  // Per-rank class breakdown over top-level spans: where each rank's wall
  // clock went. Wire spans are recorded in wall seconds, so virtual == wall.
  os << "\n## Per-rank breakdown\n\n"
     << "| lane | compute s | communicate s | wait s | other s | finish s |"
        " idle | critical spans |\n|---|---:|---:|---:|---:|---:|---:|---:|\n";
  for (std::size_t t = 0; t < trace.tracks.size(); ++t) {
    double cls[kNumPhaseClasses] = {};
    for (const auto& s : trace.tracks[t].spans) {
      if (!s.top_level) continue;
      cls[static_cast<std::size_t>(ClassifyPhase(s.name))] += s.end - s.begin;
    }
    const TrackStat& ts = r.tracks[t];
    os << "| " << ts.name;
    for (std::size_t c = 0; c < kNumPhaseClasses; ++c) {
      os << " | " << FormatDouble(cls[c], 4);
    }
    os << " | " << FormatDouble(ts.finish, 4) << " | "
       << (ts.finish > 0.0 ? Pct(ts.finish - ts.busy_s, ts.finish) : "-")
       << " | " << ts.critical_spans << " |\n";
  }
  if (r.worker_skew > 0.0) {
    os << "\nRank skew (max finish / mean finish): "
       << FormatDouble(r.worker_skew, 4) << " (straggler: " << r.slowest_worker
       << ")\n";
  }

  os << "\n## Send->recv edges\n\n"
     << "- matched: " << r.edges.matched
     << ", unmatched posts: " << r.edges.unmatched_posts
     << ", unmatched recvs: " << r.edges.unmatched_recvs << "\n";
  if (r.edges.matched > 0) {
    os << "- post->recv latency: mean "
       << FormatDouble(r.edges.total_latency_s /
                           static_cast<double>(r.edges.matched),
                       4)
       << " s, max " << FormatDouble(r.edges.max_latency_s, 4) << " s\n";
  }

  os << "\n## Phase breakdown\n\n";
  double attributed = 0.0;
  for (const double c : r.class_virtual_s) attributed += c;
  PhaseTable(os, r.phases, attributed);

  os << "\n## Critical path\n\nLongest blocking chain ending at the last"
        " span to finish (program order, matched send->recv edges, and"
        " collective barriers):\n\n";
  double crit_total = 0.0;
  for (const auto& p : r.critical_phases) crit_total += p.virtual_s;
  PhaseTable(os, r.critical_phases, crit_total);

  if (metrics == nullptr) return;
  const auto& counters = metrics->counters();
  auto counter = [&counters](const std::string& name) -> std::uint64_t {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  };

  os << "\n## Wire transport metrics\n\n"
     << "- partial writes: " << counter("wire.partial_writes")
     << ", poll calls: " << counter("wire.poll.calls") << "\n";
  for (const auto& [name, v] : metrics->gauges()) {
    if (StartsWith(name, "wire.")) {
      os << "- " << name << ": " << FormatDouble(v, 6) << "\n";
    }
  }
  bool histo_header = false;
  for (const auto& [name, h] : metrics->histograms()) {
    if (!StartsWith(name, "wire.")) continue;
    if (!histo_header) {
      os << "\n| histogram | count | mean s |\n|---|---:|---:|\n";
      histo_header = true;
    }
    os << "| " << name << " | " << h.count << " | "
       << FormatDouble(h.count > 0 ? h.sum / static_cast<double>(h.count)
                                   : 0.0,
                       4)
       << " |\n";
  }

  // Measured-vs-simulator agreement: every sim.<name> counter is a
  // reference value recorded next to the measured counter <name>.
  bool agreement_header = false;
  for (const auto& [name, sim_value] : counters) {
    constexpr std::string_view kSimPrefix = "sim.";
    if (!StartsWith(name, kSimPrefix)) continue;
    if (!agreement_header) {
      os << "\n## Measured vs simulator counters\n\n"
         << "| counter | wire | sim | equal |\n|---|---:|---:|---:|\n";
      agreement_header = true;
    }
    const std::string measured = name.substr(kSimPrefix.size());
    const std::uint64_t wire_value = counter(measured);
    os << "| " << measured << " | " << wire_value << " | " << sim_value
       << " | " << (wire_value == sim_value ? "yes" : "NO") << " |\n";
  }

  // Per-invocation normalization: the harness may run the algorithms over
  // unequal case counts (e.g. PSR's extra empty-contribution variant), so
  // raw byte totals are not comparable.
  const std::uint64_t psr = counter("comm.allreduce.psr.bytes");
  const std::uint64_t ring = counter("comm.allreduce.ring.bytes");
  const std::uint64_t psr_inv = counter("comm.allreduce.psr.invocations");
  const std::uint64_t ring_inv = counter("comm.allreduce.ring.invocations");
  if (psr > 0 && ring > 0 && psr_inv > 0 && ring_inv > 0) {
    const double psr_per = static_cast<double>(psr) / psr_inv;
    const double ring_per = static_cast<double>(ring) / ring_inv;
    os << "\nPSR < Ring measured bytes-on-wire per invocation: "
       << (psr_per < ring_per ? "yes" : "NO") << " (psr "
       << FormatDouble(psr_per, 6) << " vs ring " << FormatDouble(ring_per, 6)
       << ")\n";
  }
}

namespace {

/// Signed delta with an explicit "+" so a diff row reads as a change, not a
/// value.
std::string Signed(double delta, int precision) {
  std::string s = FormatDouble(delta, precision);
  if (delta > 0.0) s.insert(s.begin(), '+');
  return s;
}

/// Signed integer delta (counters, span/iteration counts): %g would fall
/// into scientific notation on large counts.
std::string SignedInt(std::uint64_t a, std::uint64_t b) {
  const auto delta =
      static_cast<long long>(b) - static_cast<long long>(a);
  std::string s = std::to_string(delta);
  if (delta > 0) s.insert(s.begin(), '+');
  return s;
}

/// Relative change B vs A; "-" when A is zero (new phase / division by
/// zero), unsigned "0.0%" when nothing moved so a no-change diff carries no
/// spurious signs.
std::string RelPct(double a, double b) {
  if (a == 0.0) return "-";
  if (a == b) return "0.0%";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", (b - a) / a * 100.0);
  return buf;
}

struct DiffRow {
  std::string name;
  PhaseClass cls = PhaseClass::kOther;
  double virtual_a = 0.0, virtual_b = 0.0;
  double wall_a = 0.0, wall_b = 0.0;
  bool in_a = false, in_b = false;
};

}  // namespace

void WriteReportDiffMarkdown(const TraceReport& a, const TraceReport& b,
                             const MetricsRegistry* metrics_a,
                             const MetricsRegistry* metrics_b,
                             std::ostream& os) {
  os << "# psra run diff (A = baseline, B = candidate)\n\n## Run summary\n\n"
     << "| quantity | A | B | delta | rel |\n|---|---:|---:|---:|---:|\n"
     << "| virtual makespan s | " << FormatDouble(a.horizon, 4) << " | "
     << FormatDouble(b.horizon, 4) << " | " << Signed(b.horizon - a.horizon, 4)
     << " | " << RelPct(a.horizon, b.horizon) << " |\n"
     << "| host wall s | " << FormatDouble(a.total_wall_s, 4) << " | "
     << FormatDouble(b.total_wall_s, 4) << " | "
     << Signed(b.total_wall_s - a.total_wall_s, 4) << " | "
     << RelPct(a.total_wall_s, b.total_wall_s) << " |\n"
     << "| sim speedup | " << FormatDouble(a.sim_speedup, 3) << " | "
     << FormatDouble(b.sim_speedup, 3) << " | "
     << Signed(b.sim_speedup - a.sim_speedup, 3) << " | "
     << RelPct(a.sim_speedup, b.sim_speedup) << " |\n"
     << "| iterations | " << a.iterations << " | " << b.iterations << " | "
     << SignedInt(a.iterations, b.iterations) << " | - |\n"
     << "| spans | " << a.num_spans << " | " << b.num_spans << " | "
     << SignedInt(a.num_spans, b.num_spans) << " | - |\n"
     << "| worker skew | " << FormatDouble(a.worker_skew, 4) << " | "
     << FormatDouble(b.worker_skew, 4) << " | "
     << Signed(b.worker_skew - a.worker_skew, 4) << " | - |\n";

  // Union of phase names; map keeps the merge deterministic, the final sort
  // puts the biggest virtual-time movement first.
  std::map<std::string, DiffRow> merged;
  for (const auto& p : a.phases) {
    DiffRow& row = merged[p.name];
    row.name = p.name;
    row.cls = p.cls;
    row.virtual_a = p.virtual_s;
    row.wall_a = p.wall_s;
    row.in_a = true;
  }
  for (const auto& p : b.phases) {
    DiffRow& row = merged[p.name];
    row.name = p.name;
    row.cls = p.cls;
    row.virtual_b = p.virtual_s;
    row.wall_b = p.wall_s;
    row.in_b = true;
  }
  std::vector<DiffRow> rows;
  rows.reserve(merged.size());
  for (auto& [name, row] : merged) rows.push_back(std::move(row));
  std::sort(rows.begin(), rows.end(), [](const DiffRow& x, const DiffRow& y) {
    const double dx = std::abs(x.virtual_b - x.virtual_a);
    const double dy = std::abs(y.virtual_b - y.virtual_a);
    if (dx != dy) return dx > dy;
    return x.name < y.name;
  });

  os << "\n## Phase deltas\n\n"
     << "| phase | class | virtual A s | virtual B s | delta | rel |"
        " wall A s | wall B s | wall delta |\n"
     << "|---|---|---:|---:|---:|---:|---:|---:|---:|\n";
  for (const auto& row : rows) {
    os << "| " << row.name;
    if (!row.in_a) os << " (B only)";
    if (!row.in_b) os << " (A only)";
    os << " | " << PhaseClassName(row.cls) << " | "
       << FormatDouble(row.virtual_a, 4) << " | "
       << FormatDouble(row.virtual_b, 4) << " | "
       << Signed(row.virtual_b - row.virtual_a, 4) << " | "
       << RelPct(row.virtual_a, row.virtual_b) << " | "
       << FormatDouble(row.wall_a, 4) << " | " << FormatDouble(row.wall_b, 4)
       << " | " << Signed(row.wall_b - row.wall_a, 4) << " |\n";
  }

  os << "\n## Class deltas\n\n"
     << "| class | virtual A s | virtual B s | delta | rel | wall A s |"
        " wall B s | wall delta |\n|---|---:|---:|---:|---:|---:|---:|---:|\n";
  for (std::size_t c = 0; c < kNumPhaseClasses; ++c) {
    os << "| " << PhaseClassName(static_cast<PhaseClass>(c)) << " | "
       << FormatDouble(a.class_virtual_s[c], 4) << " | "
       << FormatDouble(b.class_virtual_s[c], 4) << " | "
       << Signed(b.class_virtual_s[c] - a.class_virtual_s[c], 4) << " | "
       << RelPct(a.class_virtual_s[c], b.class_virtual_s[c]) << " | "
       << FormatDouble(a.class_wall_s[c], 4) << " | "
       << FormatDouble(b.class_wall_s[c], 4) << " | "
       << Signed(b.class_wall_s[c] - a.class_wall_s[c], 4) << " |\n";
  }

  if (metrics_a != nullptr && metrics_b != nullptr) {
    // Counters whose values differ, over the union of names. Identical
    // counters are summarized in one line: the interesting diff output is
    // what changed, and "N unchanged" pins that the rest really matched.
    const auto& ca = metrics_a->counters();
    const auto& cb = metrics_b->counters();
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> all;
    for (const auto& [name, v] : ca) all[name].first = v;
    for (const auto& [name, v] : cb) all[name].second = v;
    std::size_t unchanged = 0;
    os << "\n## Counter deltas\n\n"
       << "| counter | A | B | delta |\n|---|---:|---:|---:|\n";
    for (const auto& [name, v] : all) {
      if (v.first == v.second) {
        ++unchanged;
        continue;
      }
      os << "| " << name << " | " << v.first << " | " << v.second << " | "
         << SignedInt(v.first, v.second) << " |\n";
    }
    os << "\n" << unchanged << " counters unchanged.\n";
  }
}

// ---- Convergence timeline ------------------------------------------------

const std::vector<double>* TimelineData::Column(std::string_view name) const {
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series[i] == name) return &columns[i];
  }
  return nullptr;
}

TimelineData LoadTimelineJsonl(std::string_view text) {
  TimelineData data;
  bool have_header = false;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view raw =
        text.substr(pos, nl == std::string_view::npos ? std::string_view::npos
                                                      : nl - pos);
    pos = nl == std::string_view::npos ? text.size() : nl + 1;
    ++line_no;
    const std::string_view line = Trim(raw);
    if (line.empty()) continue;
    auto fail = [line_no](const std::string& what) {
      throw InvalidArgument("timeline line " + std::to_string(line_no) + ": " +
                            what);
    };
    json::Value v;
    try {
      v = json::Parse(line);
    } catch (const std::exception& e) {
      fail(e.what());
    }
    if (!v.is_object()) fail("expected a JSON object");
    if (!have_header) {
      const json::Value* ver = v.Find("psra_timeline");
      if (ver == nullptr || !ver->is_number() || ver->number != 1.0) {
        fail("expected header {\"psra_timeline\": 1, \"series\": [...]}");
      }
      const json::Value* names = v.Find("series");
      if (names == nullptr || !names->is_array()) {
        fail("header missing \"series\" array");
      }
      for (const auto& n : names->items) {
        if (!n.is_string()) fail("series names must be strings");
        data.series.push_back(n.str);
      }
      data.columns.assign(data.series.size(), {});
      have_header = true;
      continue;
    }
    const json::Value* it = v.Find("it");
    const json::Value* vals = v.Find("v");
    if (it == nullptr || !it->is_number() || it->number < 0.0) {
      fail("row missing numeric \"it\"");
    }
    if (vals == nullptr || !vals->is_array()) fail("row missing \"v\" array");
    if (vals->items.size() != data.series.size()) {
      fail("row carries " + std::to_string(vals->items.size()) +
           " values, header declares " + std::to_string(data.series.size()) +
           " series");
    }
    data.iterations.push_back(static_cast<std::uint64_t>(it->number));
    for (std::size_t i = 0; i < vals->items.size(); ++i) {
      const json::Value& s = vals->items[i];
      if (s.kind == json::Value::Kind::kNull) {
        data.columns[i].push_back(std::numeric_limits<double>::quiet_NaN());
      } else if (s.is_number()) {
        data.columns[i].push_back(s.number);
      } else {
        fail("samples must be numbers or null");
      }
    }
  }
  if (!have_header) {
    throw InvalidArgument("timeline: no header line (empty input?)");
  }
  return data;
}

namespace {

/// The residual series iterations-to-tolerance and health apply to, in
/// report order. ts.objective is NOT here: the L1 objective converges to a
/// nonzero optimum, so tolerance thresholds are meaningless for it.
constexpr const char* kResidualSeries[] = {"ts.primal_residual",
                                           "ts.dual_residual"};

}  // namespace

TimelineReport AnalyzeTimeline(const TimelineData& data,
                               const std::vector<double>& tolerances) {
  TimelineReport r;
  r.rows = data.rows();
  if (r.rows > 0) {
    r.first_iteration = data.iterations.front();
    r.last_iteration = data.iterations.back();
  }
  for (std::size_t i = 1; i < data.iterations.size(); ++i) {
    if (data.iterations[i] != data.iterations[i - 1] + 1) {
      r.contiguous = false;
      break;
    }
  }

  for (std::size_t i = 0; i < data.series.size(); ++i) {
    const std::vector<double>& col = data.columns[i];
    TimelineSeriesStat st;
    st.name = data.series[i];
    if (!col.empty()) {
      st.first = col.front();
      st.last = col.back();
    }
    for (const double v : col) {
      if (!std::isfinite(v)) {
        st.has_non_finite = true;
        continue;
      }
      if (st.finite == 0) {
        st.min = st.max = v;
      } else {
        st.min = std::min(st.min, v);
        st.max = std::max(st.max, v);
      }
      ++st.finite;
    }
    r.series.push_back(std::move(st));
  }

  for (const char* name : kResidualSeries) {
    const std::vector<double>* col = data.Column(name);
    if (col == nullptr || col->empty()) continue;
    for (const double tol : tolerances) {
      TimelineCrossing c;
      c.series = name;
      c.tol = tol;
      for (std::size_t row = 0; row < col->size(); ++row) {
        if ((*col)[row] <= tol) {  // NaN compares false: never crosses
          c.iteration = data.iterations[row];
          break;
        }
      }
      r.crossings.push_back(std::move(c));
    }
    TimelineHealth h;
    h.series = name;
    h.window = std::max<std::size_t>(5, col->size() / 4);
    h.diverged = col->back() > col->front();
    for (const double v : *col) {
      if (!std::isfinite(v)) h.diverged = true;
    }
    if (col->size() > h.window) {
      const double start = (*col)[col->size() - 1 - h.window];
      const double end = col->back();
      h.window_improvement =
          (start - end) / std::max(std::abs(start),
                                   std::numeric_limits<double>::min());
      h.stalled = h.window_improvement < 0.01;
    }
    r.health.push_back(std::move(h));
  }

  if (const std::vector<double>* rho = data.Column("ts.rho");
      rho != nullptr && !rho->empty()) {
    r.has_rho = true;
    r.rho_first = rho->front();
    r.rho_last = rho->back();
    for (std::size_t i = 1; i < rho->size(); ++i) {
      if ((*rho)[i] != (*rho)[i - 1]) ++r.rho_changes;
    }
  }

  if (const std::vector<double>* bytes = data.Column("ts.bytes");
      bytes != nullptr && !bytes->empty()) {
    const std::vector<double>* resid = nullptr;
    for (const char* cand :
         {"ts.primal_residual", "ts.dual_residual", "ts.objective"}) {
      resid = data.Column(cand);
      if (resid != nullptr) {
        r.efficiency_series = cand;
        break;
      }
    }
    std::vector<double> cumulative(bytes->size(), 0.0);
    double acc = 0.0;
    for (std::size_t i = 0; i < bytes->size(); ++i) {
      if (std::isfinite((*bytes)[i])) acc += (*bytes)[i];
      cumulative[i] = acc;
    }
    r.total_bytes = acc;
    if (resid != nullptr) {
      // Up to 8 evenly spaced rows, always including the first and last.
      const std::size_t n = bytes->size();
      const std::size_t points = std::min<std::size_t>(8, n);
      std::size_t prev_row = n;  // sentinel: no row emitted yet
      for (std::size_t k = 0; k < points; ++k) {
        const std::size_t row =
            points == 1 ? 0 : k * (n - 1) / (points - 1);
        if (row == prev_row) continue;
        prev_row = row;
        TimelineEfficiencyRow e;
        e.iteration = data.iterations[row];
        e.cumulative_bytes = cumulative[row];
        e.residual = (*resid)[row];
        r.efficiency.push_back(e);
      }
    }
  }
  return r;
}

namespace {

/// Crossing iteration for the table: "never" reads better than 0.
std::string CrossingCell(std::uint64_t iteration) {
  return iteration == 0 ? "never" : std::to_string(iteration);
}

}  // namespace

void WriteTimelineMarkdown(const TimelineReport& report, std::ostream& os) {
  os << "# Convergence timeline\n\n"
     << "- rows: " << report.rows << " (iterations " << report.first_iteration
     << ".." << report.last_iteration
     << (report.contiguous ? ", contiguous" : ", NOT contiguous") << ")\n"
     << "- series: " << report.series.size() << "\n";
  if (report.total_bytes > 0.0) {
    os << "- bytes on wire: " << FormatBytes(report.total_bytes) << "\n";
  }

  os << "\n## Series\n\n"
     << "| series | first | last | min | max |\n|---|---:|---:|---:|---:|\n";
  for (const auto& st : report.series) {
    os << "| " << st.name << " | " << FormatDouble(st.first, 6) << " | "
       << FormatDouble(st.last, 6) << " | " << FormatDouble(st.min, 6)
       << " | " << FormatDouble(st.max, 6)
       << (st.has_non_finite ? " (non-finite samples!)" : "") << " |\n";
  }

  if (!report.crossings.empty()) {
    os << "\n## Iterations to tolerance\n\n| series | tolerance | iteration "
          "|\n|---|---:|---:|\n";
    for (const auto& c : report.crossings) {
      os << "| " << c.series << " | " << FormatDouble(c.tol, 6) << " | "
         << CrossingCell(c.iteration) << " |\n";
    }
  }

  if (!report.health.empty()) {
    os << "\n## Health\n\n| series | trend | window rows | window improvement "
          "|\n|---|---|---:|---:|\n";
    for (const auto& h : report.health) {
      const char* trend =
          h.diverged ? "DIVERGED" : (h.stalled ? "stalled" : "converging");
      os << "| " << h.series << " | " << trend << " | " << h.window << " | "
         << RelPct(1.0, 1.0 + h.window_improvement) << " |\n";
    }
  }

  if (report.has_rho) {
    os << "\n## Rho trajectory\n\nrho " << FormatDouble(report.rho_first, 6)
       << " -> " << FormatDouble(report.rho_last, 6) << ", "
       << report.rho_changes << " adaptation step(s) over " << report.rows
       << " rows.\n";
  }

  if (!report.efficiency.empty()) {
    os << "\n## Bytes vs residual\n\n| iteration | cumulative bytes | "
       << report.efficiency_series << " |\n|---:|---:|---:|\n";
    for (const auto& e : report.efficiency) {
      os << "| " << e.iteration << " | "
         << FormatDouble(e.cumulative_bytes, 17) << " | "
         << FormatDouble(e.residual, 6) << " |\n";
    }
  }
}

void WriteTimelineDiffMarkdown(const TimelineReport& a, const TimelineReport& b,
                               std::ostream& os) {
  os << "# Convergence timeline diff (A = baseline, B = candidate)\n\n"
     << "## Run shape\n\n| quantity | A | B | delta |\n|---|---:|---:|---:|\n"
     << "| rows | " << a.rows << " | " << b.rows << " | "
     << SignedInt(a.rows, b.rows) << " |\n"
     << "| last iteration | " << a.last_iteration << " | " << b.last_iteration
     << " | " << SignedInt(a.last_iteration, b.last_iteration) << " |\n"
     << "| bytes on wire | " << FormatDouble(a.total_bytes, 17) << " | "
     << FormatDouble(b.total_bytes, 17) << " | "
     << Signed(b.total_bytes - a.total_bytes, 17) << " |\n";

  // Final values over the union of series names (map: sorted, dedup'd).
  std::map<std::string, std::pair<const TimelineSeriesStat*,
                                  const TimelineSeriesStat*>> all;
  for (const auto& st : a.series) all[st.name].first = &st;
  for (const auto& st : b.series) all[st.name].second = &st;
  os << "\n## Final values\n\n| series | A last | B last | delta | rel "
        "|\n|---|---:|---:|---:|---:|\n";
  for (const auto& [name, pair] : all) {
    const double va = pair.first != nullptr ? pair.first->last : 0.0;
    const double vb = pair.second != nullptr ? pair.second->last : 0.0;
    os << "| " << name << " | "
       << (pair.first != nullptr ? FormatDouble(va, 6) : "-") << " | "
       << (pair.second != nullptr ? FormatDouble(vb, 6) : "-") << " | "
       << Signed(vb - va, 6) << " | " << RelPct(va, vb) << " |\n";
  }

  if (!a.crossings.empty() || !b.crossings.empty()) {
    std::map<std::pair<std::string, double>,
             std::pair<std::uint64_t, std::uint64_t>> cross;
    for (const auto& c : a.crossings) cross[{c.series, c.tol}].first =
        c.iteration;
    for (const auto& c : b.crossings) cross[{c.series, c.tol}].second =
        c.iteration;
    os << "\n## Iterations to tolerance\n\n| series | tolerance | A | B "
          "|\n|---|---:|---:|---:|\n";
    for (const auto& [key, v] : cross) {
      os << "| " << key.first << " | " << FormatDouble(key.second, 6) << " | "
         << CrossingCell(v.first) << " | " << CrossingCell(v.second) << " |\n";
    }
  }
}

}  // namespace psra::obs
