#include "obs/json.hpp"

#include <cstdlib>

#include "support/status.hpp"

namespace psra::obs::json {

namespace {

/// Trusting recursive-descent builder: runs AFTER Scanner::Validate, so it
/// only has to materialize, never to diagnose. Shapes (escapes, number
/// grammar) mirror the Scanner exactly.
class Builder {
 public:
  explicit Builder(std::string_view text) : text_(text) {}

  Value Build() {
    SkipWs();
    return ParseValue();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string ParseString() {
    ++pos_;  // opening quote
    std::string s;
    while (text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        c = text_[pos_++];
        switch (c) {
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u':
            // The writers never emit \u escapes; decode as '?' like the
            // Scanner does rather than carrying a UTF-8 encoder.
            pos_ += 4;
            c = '?';
            break;
          default: break;  // '"', '\\', '/'
        }
      }
      s.push_back(c);
    }
    ++pos_;  // closing quote
    return s;
  }

  Value ParseValue() {
    Value v;
    const char c = text_[pos_];
    if (c == '{') {
      v.kind = Value::Kind::kObject;
      ++pos_;
      SkipWs();
      if (text_[pos_] == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        SkipWs();
        std::string key = ParseString();
        SkipWs();
        ++pos_;  // ':'
        SkipWs();
        v.members.emplace_back(std::move(key), ParseValue());
        SkipWs();
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        ++pos_;  // '}'
        return v;
      }
    }
    if (c == '[') {
      v.kind = Value::Kind::kArray;
      ++pos_;
      SkipWs();
      if (text_[pos_] == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        SkipWs();
        v.items.push_back(ParseValue());
        SkipWs();
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        ++pos_;  // ']'
        return v;
      }
    }
    if (c == '"') {
      v.kind = Value::Kind::kString;
      v.str = ParseString();
      return v;
    }
    if (c == 't') {
      v.kind = Value::Kind::kBool;
      v.boolean = true;
      pos_ += 4;
      return v;
    }
    if (c == 'f') {
      v.kind = Value::Kind::kBool;
      pos_ += 5;
      return v;
    }
    if (c == 'n') {
      pos_ += 4;
      return v;  // kNull
    }
    v.kind = Value::Kind::kNumber;
    // Bound the token before strtod: a string_view is not null-terminated.
    const std::size_t start = pos_;
    auto is_num_char = [](char ch) {
      return (ch >= '0' && ch <= '9') || ch == '-' || ch == '+' ||
             ch == '.' || ch == 'e' || ch == 'E';
    };
    while (pos_ < text_.size() && is_num_char(text_[pos_])) ++pos_;
    const std::string token(text_.substr(start, pos_ - start));
    v.number = std::strtod(token.c_str(), nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Parse(std::string_view text) {
  Scanner scanner(text);
  if (!scanner.Validate()) {
    throw InvalidArgument("malformed JSON: " + scanner.Error());
  }
  return Builder(text).Build();
}

}  // namespace psra::obs::json
