// Per-iteration time-series recorder: the convergence telemetry plane
// (DESIGN.md §13). Where the MetricsRegistry keeps cumulative counters, the
// TimeSeriesRecorder keeps the per-iteration trajectory — residual norms,
// objective, rho, group churn, staleness, bytes/rounds deltas — one float64
// sample per series per recorded iteration.
//
// Contracts (pinned by test_obs / test_alloc / test_checkpoint):
//   - Deterministic: samples come from virtual-time state only, so the
//     serialized timeline is byte-identical across host pool sizes.
//   - Chunk-pooled: samples land in fixed-size chunks leased from an
//     internal free pool. Steady-state appends are plain stores — the
//     0-allocs/iter hot-path gate holds with a recorder attached. Clear()
//     returns chunks to the pool, so reuse allocates nothing.
//   - Stable handles: Series() references stay valid for the recorder's
//     lifetime; engines hoist them at Run start like Counter()/Gauge().
//   - Merge = concatenation: MergeFrom appends the other recorder's rows
//     after this one's, which is exactly the split-run contract — a run
//     resumed from a checkpoint at iteration K records rows K+1.., and
//     merging them after the first run's rows 1..K reproduces the
//     uninterrupted run's timeline byte-for-byte.
//
// Serialization is JSONL (one object per line, parseable line-at-a-time):
//   {"psra_timeline": 1, "series": ["ts.dual_residual", ...]}
//   {"it": 1, "v": [0.3517, ...]}
// The header lists series names in sorted order; every row carries the
// recorded iteration number plus one value per series in header order.
// Non-finite samples serialize as null (JSON has no NaN/Inf).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace psra::obs {

class MetricsRegistry;
class TimeSeriesRecorder;

/// One named series: an append-only sequence of float64 samples stored in
/// chunks leased from the owning recorder. Handles are stable for the
/// recorder's lifetime — hoist them out of the iteration loop.
class TimeSeries {
 public:
  /// Appends one sample. A plain store except every kChunkSamples-th call,
  /// which leases the next chunk (pool hit: no allocation).
  void Append(double v);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  double operator[](std::size_t i) const;
  double front() const { return (*this)[0]; }
  double back() const { return (*this)[size_ - 1]; }
  const std::string& name() const { return name_; }

  /// Default-constructed handles are detached; only a TimeSeriesRecorder
  /// wires one up (via Series()).
  TimeSeries() = default;

 private:
  friend class TimeSeriesRecorder;

  TimeSeriesRecorder* owner_ = nullptr;
  std::string name_;
  std::vector<double*> chunks_;
  std::size_t size_ = 0;
};

class TimeSeriesRecorder {
 public:
  static constexpr std::size_t kChunkSamples = 1024;

  TimeSeriesRecorder() = default;
  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  /// Returns the series registered under `name` (created empty on first
  /// use). Names must carry the "ts." prefix — the timeline namespace that
  /// keeps series keys disjoint from counter/gauge taxonomies.
  TimeSeries& Series(const std::string& name);
  /// Lookup without creating; null when the series does not exist.
  const TimeSeries* Find(const std::string& name) const;

  /// Starts a row: records the engine iteration number the samples appended
  /// next belong to. Engines call this once per iteration, then append
  /// exactly one sample to every hoisted series.
  void BeginIteration(std::uint64_t iteration);

  /// Number of recorded rows (BeginIteration calls).
  std::size_t rows() const { return iterations_.size(); }
  /// Iteration number of row `r`.
  std::uint64_t IterationAt(std::size_t r) const;

  bool empty() const { return series_.empty() && iterations_.empty(); }
  const std::map<std::string, TimeSeries>& series() const { return series_; }

  /// Drops all series and rows; chunks return to the pool for reuse.
  void Clear();

  /// Appends `other`'s rows after this recorder's (concatenation — the
  /// split-run merge contract; see the header comment). Series present in
  /// only one recorder keep their samples; WriteJsonl requires the result
  /// to be rectangular again.
  void MergeFrom(const TimeSeriesRecorder& other);

  /// Deterministic JSONL (header line + one line per row; see above).
  /// Requires every series to hold exactly rows() samples.
  void WriteJsonl(std::ostream& os) const;

  /// Publishes per-series summary gauges into `m`:
  ///   ts.<series>.samples / .first / .last / .min / .max
  /// Gauges (not counters) so a re-publish or a registry merge overwrites
  /// instead of double-counting.
  void PublishSummary(MetricsRegistry& m) const;

  /// Iteration number of the first row where `name` <= `value`; 0 when the
  /// series is absent, empty, or never crosses. Deterministic, so harnesses
  /// (bench_sweep) gate it exactly like a traffic counter.
  std::uint64_t FirstIterationAtOrBelow(const std::string& name,
                                        double value) const;

 private:
  friend class TimeSeries;
  struct Chunk {
    double v[kChunkSamples];
  };
  /// Pops a pooled chunk or allocates a fresh one.
  double* Lease();

  std::vector<std::unique_ptr<Chunk>> owned_;
  std::vector<double*> free_;
  std::map<std::string, TimeSeries> series_;
  TimeSeries iterations_;  // row -> iteration number (exact below 2^53)
};

}  // namespace psra::obs
