// Metrics registry: named counters, gauges and fixed-bucket histograms with
// deterministic (sorted) ordering, so two runs of the same configuration
// produce byte-identical metrics.json artifacts regardless of host pool size.
//
// Zero-overhead-when-off contract: nothing in the library updates a registry
// unless the caller installed an ObsContext (see obs/obs.hpp); all hot-path
// instrumentation sites are guarded by a null check that compiles to a
// single predictable branch. When a registry IS installed, callers hoist
// `Counter()` / `Gauge()` references out of their loops — the returned
// references are stable for the registry's lifetime — so steady-state
// updates are plain integer/double stores.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace psra::obs {

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
/// one implicit overflow bucket catches everything above the last bound.
struct Histogram {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;

  void Observe(double value);
  /// Adds another histogram's observations; bucket bounds must match.
  void Merge(const Histogram& other);

  bool operator==(const Histogram& other) const = default;
};

class MetricsRegistry {
 public:
  /// Monotonic counter. The reference stays valid for the registry's
  /// lifetime, so call sites hoist it out of loops.
  std::uint64_t& Counter(const std::string& name);
  /// Last-value gauge (same stability guarantee).
  double& Gauge(const std::string& name);
  /// Histogram with the given bucket bounds; re-requesting an existing name
  /// ignores `bounds` and returns the registered instance.
  Histogram& Histo(const std::string& name, std::span<const double> bounds);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Folds `other` into this registry: counters add, gauges overwrite,
  /// histograms merge. Lets a harness aggregate several runs into one
  /// metrics.json (per-run keys stay distinct when they embed the run name).
  void MergeFrom(const MetricsRegistry& other);

  /// Deterministic JSON: {"counters":{...},"gauges":{...},"histograms":{...}}
  /// with keys in sorted order and round-trippable number formatting.
  void WriteJson(std::ostream& os) const;

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  bool operator==(const MetricsRegistry& other) const = default;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace psra::obs
