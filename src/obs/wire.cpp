#include "obs/wire.hpp"

#include <algorithm>
#include <array>
#include <ostream>
#include <sstream>
#include <vector>

#include "obs/json.hpp"
#include "support/status.hpp"
#include "support/string_util.hpp"

namespace psra::obs {

std::span<const double> WireLatencyBounds() {
  static constexpr std::array<double, 7> kBounds = {1e-6, 1e-5, 1e-4, 1e-3,
                                                    1e-2, 1e-1, 1.0};
  return kBounds;
}

WireObs::WireObs(std::uint32_t rank)
    : rank_(rank),
      epoch_(std::chrono::steady_clock::now()),
      track_(tracer_.AddTrack("rank " + std::to_string(rank))) {}

double WireObs::Now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

std::string WireObs::RankKey(std::string_view suffix) const {
  std::string key = "wire.rank" + std::to_string(rank_) + ".";
  key.append(suffix);
  return key;
}

std::string SerializeWireObs(const WireObs& obs) {
  std::ostringstream os;
  os << "{\"rank\": " << obs.rank()
     << ", \"clock_offset_s\": " << FormatDouble(obs.clock_offset_s, 17)
     << ",\n\"metrics\": ";
  obs.metrics().WriteJson(os);
  os << ",\n\"trace\": ";
  obs.tracer().WriteChromeJson(os);
  os << "}\n";
  return std::move(os).str();
}

RankObsPayload ParseWireObsPayload(std::string_view text) {
  const json::Value root = json::Parse(text);
  PSRA_REQUIRE(root.is_object(), "wire obs payload is not a JSON object");
  const json::Value* rank = root.Find("rank");
  PSRA_REQUIRE(rank != nullptr && rank->is_number() && rank->number >= 0,
               "wire obs payload has no rank");
  const json::Value* metrics = root.Find("metrics");
  PSRA_REQUIRE(metrics != nullptr && metrics->is_object(),
               "wire obs payload has no metrics object");
  const json::Value* trace = root.Find("trace");
  PSRA_REQUIRE(trace != nullptr && trace->is_object(),
               "wire obs payload has no trace object");
  RankObsPayload payload;
  payload.rank = static_cast<std::uint32_t>(rank->number);
  if (const json::Value* off = root.Find("clock_offset_s");
      off != nullptr && off->is_number()) {
    payload.clock_offset_s = off->number;
  }
  payload.metrics = MetricsFromJson(*metrics);
  payload.trace = LoadChromeTrace(*trace);
  return payload;
}

namespace {

void WriteString(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

/// Seconds -> trace microseconds.
void WriteTs(std::ostream& os, double t) { os << FormatDouble(t * 1e6, 15); }

}  // namespace

void WriteMergedWireTrace(std::span<const RankObsPayload> ranks,
                          std::ostream& os) {
  // Stable lane order: ranks ascending, regardless of arrival order.
  std::vector<const RankObsPayload*> order;
  order.reserve(ranks.size());
  for (const RankObsPayload& p : ranks) order.push_back(&p);
  std::sort(order.begin(), order.end(),
            [](const RankObsPayload* a, const RankObsPayload* b) {
              return a->rank < b->rank;
            });

  os << "{\"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    os << (first ? "  " : ",\n  ");
    first = false;
  };
  // Globally unique tids: LoadChromeTrace keys tracks by tid alone, so two
  // ranks must never share one even though their pids differ.
  std::uint64_t next_tid = 0;
  for (const RankObsPayload* p : order) {
    const std::uint64_t pid = p->rank;
    sep();
    os << R"({"ph": "M", "name": "process_name", "pid": )" << pid
       << R"(, "tid": 0, "args": {"name": "rank )" << p->rank << "\"}}";
    sep();
    os << R"({"ph": "M", "name": "process_sort_index", "pid": )" << pid
       << R"(, "tid": 0, "args": {"sort_index": )" << p->rank << "}}";
    for (const ReportTrack& track : p->trace.tracks) {
      const std::uint64_t tid = next_tid++;
      sep();
      os << R"({"ph": "M", "name": "thread_name", "pid": )" << pid
         << R"(, "tid": )" << tid << R"(, "args": {"name": )";
      WriteString(os, track.name);
      os << "}}";
      sep();
      os << R"({"ph": "M", "name": "thread_sort_index", "pid": )" << pid
         << R"(, "tid": )" << tid << R"(, "args": {"sort_index": )" << tid
         << "}}";
      for (const ReportSpan& s : track.spans) {
        // Align onto rank 0's time base; the clamp keeps an overestimated
        // offset from producing negative timestamps (which trace viewers
        // silently drop).
        const double begin = std::max(0.0, s.begin - p->clock_offset_s);
        sep();
        os << R"({"ph": "X", "name": )";
        WriteString(os, s.name);
        os << R"(, "cat": "wire", "pid": )" << pid << R"(, "tid": )" << tid
           << R"(, "ts": )";
        WriteTs(os, begin);
        os << R"(, "dur": )";
        WriteTs(os, s.end - s.begin);
        os << R"(, "args": {"iter": )" << s.iteration << R"(, "wall_us": )"
           << FormatDouble(s.wall_s * 1e6, 9);
        if (s.peer >= 0) {
          os << R"(, "peer": )" << s.peer << R"(, "tag": )" << s.tag;
        }
        os << "}}";
      }
    }
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

}  // namespace psra::obs
