#include "comm/transport.hpp"

#include "obs/metrics.hpp"

namespace psra::comm {

void Transport::PublishTo(obs::MetricsRegistry& reg) const {
  reg.Counter("transport.post.bytes") += stats_.bytes_posted;
  reg.Counter("transport.post.msgs") += stats_.messages_posted;
  reg.Counter("transport.recv.bytes") += stats_.bytes_received;
  reg.Counter("transport.recv.msgs") += stats_.messages_received;
  reg.Counter("transport.fences") += stats_.fences;
}

}  // namespace psra::comm
