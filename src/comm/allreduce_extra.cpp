// Additional allreduce baselines: recursive halving-doubling and binomial
// tree. Not part of the paper's evaluation — they widen the collective
// comparison in bench_allreduce_cost and give API users the standard MPI
// menu.
#include <algorithm>
#include <bit>

#include "comm/allreduce_impl.hpp"
#include "support/status.hpp"

namespace psra::comm {

namespace {

// Payload abstraction shared by both algorithms. A "value" is the rank's
// full working vector; Size prices a sub-range crossing a link.
struct DenseOps {
  using Value = linalg::DenseVector;
  static std::size_t SizeInRange(const Value& v, std::uint64_t lo,
                                 std::uint64_t hi) {
    (void)v;
    return static_cast<std::size_t>(hi - lo);
  }
  static std::size_t SizeAll(const Value& v) { return v.size(); }
  /// dst[lo,hi) += src[lo,hi)
  static void ReduceRange(Value& dst, const Value& src, std::uint64_t lo,
                          std::uint64_t hi) {
    for (std::uint64_t i = lo; i < hi; ++i) {
      dst[static_cast<std::size_t>(i)] += src[static_cast<std::size_t>(i)];
    }
  }
  static void ReduceAll(Value& dst, const Value& src) {
    linalg::Axpy(1.0, src, dst);
  }
  /// dst[lo,hi) = src[lo,hi)
  static void CopyRange(Value& dst, const Value& src, std::uint64_t lo,
                        std::uint64_t hi) {
    std::copy(src.begin() + static_cast<std::ptrdiff_t>(lo),
              src.begin() + static_cast<std::ptrdiff_t>(hi),
              dst.begin() + static_cast<std::ptrdiff_t>(lo));
  }
};

struct SparseOps {
  using Value = linalg::SparseVector;
  static std::size_t SizeInRange(const Value& v, std::uint64_t lo,
                                 std::uint64_t hi) {
    return v.CountInRange(lo, hi);
  }
  static std::size_t SizeAll(const Value& v) { return v.nnz(); }
  static void ReduceRange(Value& dst, const Value& src, std::uint64_t lo,
                          std::uint64_t hi) {
    dst = linalg::SparseVector::Sum(dst, src.Slice(lo, hi));
  }
  static void ReduceAll(Value& dst, const Value& src) {
    dst = linalg::SparseVector::Sum(dst, src);
  }
  static void CopyRange(Value& dst, const Value& src, std::uint64_t lo,
                        std::uint64_t hi) {
    // Replace dst's [lo,hi) content with src's.
    Value outside_low = dst.Slice(0, lo);
    Value outside_high = dst.Slice(hi, dst.dim());
    Value inside = src.Slice(lo, hi);
    std::vector<Value> parts;
    parts.push_back(std::move(outside_low));
    parts.push_back(std::move(inside));
    parts.push_back(std::move(outside_high));
    dst = linalg::SparseVector::ConcatDisjoint(parts);
  }
};

// Core of the recursive halving-doubling algorithm. `value` and `t` are
// caller-provided working vectors (recycled across invocations); on return,
// value[g] holds member g's full reduced vector and `st` the accounting.
template <typename Ops>
void RunRhdCore(const GroupComm& group,
                std::span<const typename Ops::Value> inputs,
                std::span<const simnet::VirtualTime> starts, std::uint64_t dim,
                bool sparse, std::vector<typename Ops::Value>& value,
                std::vector<simnet::VirtualTime>& t, CommStats& st) {
  const auto& cm = group.cost_model();
  const GroupRank n = group.size();
  using Value = typename Ops::Value;

  value.assign(inputs.begin(), inputs.end());
  t.assign(starts.begin(), starts.end());
  st.Reset(n);

  const std::size_t elem_bytes = group.pricing().PerElement(sparse);
  auto send = [&](GroupRank from, GroupRank to, std::size_t elems) {
    const simnet::Link link = group.LinkBetween(from, to);
    const simnet::VirtualTime cost = sparse
                                         ? cm.SparseTransferTime(link, elems)
                                         : cm.DenseTransferTime(link, elems);
    st.CountSend(elems, elem_bytes);
    st.total_send_time += cost;
    return cost;
  };

  if (n == 1) {
    st.finish_times[0] = starts[0];
    st.all_done = starts[0];
    st.scatter_reduce_done = starts[0];
    return;
  }

  // Fold remainder ranks into partners so the core runs on 2^m ranks.
  const GroupRank m = static_cast<GroupRank>(std::bit_floor(n));
  const GroupRank rem = n - m;
  // Ranks [0, 2*rem) pair up: odd sends everything to even, which becomes an
  // active rank; ranks >= 2*rem are active as-is.
  if (rem > 0) ++st.rounds;
  for (GroupRank p = 0; p < rem; ++p) {
    const GroupRank src = 2 * p + 1, dst = 2 * p;
    const simnet::VirtualTime cost = send(src, dst, Ops::SizeAll(value[src]));
    const simnet::VirtualTime arrive = t[src] + cost;
    t[src] = arrive;
    t[dst] = std::max(t[dst], arrive);
    Ops::ReduceAll(value[dst], value[src]);
  }
  auto active_of = [&](GroupRank a) {  // active index -> group rank
    return a < rem ? static_cast<GroupRank>(2 * a)
                   : static_cast<GroupRank>(a + rem);
  };

  // Recursive halving reduce-scatter over the m active ranks. Active rank a
  // owns range [lo[a], hi[a]).
  std::vector<std::uint64_t> lo(m, 0), hi(m, dim);
  for (GroupRank bit = 1; bit < m; bit <<= 1) {
    ++st.rounds;
    // Exchange with the partner differing in this bit.
    std::vector<simnet::VirtualTime> arrive(m);
    std::vector<Value> snapshot(m);
    for (GroupRank a = 0; a < m; ++a) snapshot[a] = value[active_of(a)];
    for (GroupRank a = 0; a < m; ++a) {
      const GroupRank b = a ^ bit;
      const std::uint64_t mid = (lo[a] + hi[a]) / 2;
      // Lower active index keeps the lower half.
      const bool keep_low = (a & bit) == 0;
      const std::uint64_t send_lo = keep_low ? mid : lo[a];
      const std::uint64_t send_hi = keep_low ? hi[a] : mid;
      const GroupRank ga = active_of(a), gb = active_of(b);
      const simnet::VirtualTime cost =
          send(ga, gb, Ops::SizeInRange(snapshot[a], send_lo, send_hi));
      arrive[b] = t[ga] + cost;  // b receives a's half
      if (keep_low) {
        hi[a] = mid;
      } else {
        lo[a] = mid;
      }
    }
    for (GroupRank a = 0; a < m; ++a) {
      const GroupRank b = a ^ bit;
      Ops::ReduceRange(value[active_of(a)], snapshot[b], lo[a], hi[a]);
      t[active_of(a)] = std::max(t[active_of(a)], arrive[a]);
    }
  }
  st.scatter_reduce_done = *std::max_element(t.begin(), t.end());

  // Recursive doubling allgather: exchange owned ranges, growing them.
  for (GroupRank bit = m >> 1; bit >= 1; bit >>= 1) {
    ++st.rounds;
    std::vector<simnet::VirtualTime> arrive(m);
    std::vector<Value> snapshot(m);
    for (GroupRank a = 0; a < m; ++a) snapshot[a] = value[active_of(a)];
    std::vector<std::uint64_t> new_lo(lo), new_hi(hi);
    for (GroupRank a = 0; a < m; ++a) {
      const GroupRank b = a ^ bit;
      const GroupRank ga = active_of(a), gb = active_of(b);
      const simnet::VirtualTime cost =
          send(ga, gb, Ops::SizeInRange(snapshot[a], lo[a], hi[a]));
      arrive[b] = t[ga] + cost;
      new_lo[a] = std::min(lo[a], lo[b]);
      new_hi[a] = std::max(hi[a], hi[b]);
    }
    const std::vector<std::uint64_t> old_lo(lo), old_hi(hi);
    for (GroupRank a = 0; a < m; ++a) {
      const GroupRank b = a ^ bit;
      Ops::CopyRange(value[active_of(a)], snapshot[b], old_lo[b], old_hi[b]);
      lo[a] = new_lo[a];
      hi[a] = new_hi[a];
      t[active_of(a)] = std::max(t[active_of(a)], arrive[a]);
    }
  }

  // Unfold: each folded rank receives the full result from its partner.
  if (rem > 0) ++st.rounds;
  for (GroupRank p = 0; p < rem; ++p) {
    const GroupRank src = 2 * p, dst = 2 * p + 1;
    const simnet::VirtualTime cost = send(src, dst, Ops::SizeAll(value[src]));
    t[dst] = std::max(t[dst], t[src] + cost);
    value[dst] = value[src];
  }

  st.finish_times.assign(t.begin(), t.end());
  st.all_done = *std::max_element(st.finish_times.begin(),
                                  st.finish_times.end());
}

// Core of the binomial-tree algorithm; same contract as RunRhdCore.
template <typename Ops>
void RunTreeCore(const GroupComm& group,
                 std::span<const typename Ops::Value> inputs,
                 std::span<const simnet::VirtualTime> starts, bool sparse,
                 std::vector<typename Ops::Value>& value,
                 std::vector<simnet::VirtualTime>& t, CommStats& st) {
  const auto& cm = group.cost_model();
  const GroupRank n = group.size();

  value.assign(inputs.begin(), inputs.end());
  t.assign(starts.begin(), starts.end());
  st.Reset(n);

  const std::size_t elem_bytes = group.pricing().PerElement(sparse);
  auto send = [&](GroupRank from, GroupRank to, std::size_t elems) {
    const simnet::Link link = group.LinkBetween(from, to);
    const simnet::VirtualTime cost = sparse
                                         ? cm.SparseTransferTime(link, elems)
                                         : cm.DenseTransferTime(link, elems);
    st.CountSend(elems, elem_bytes);
    st.total_send_time += cost;
    return cost;
  };

  // Binomial reduce toward group rank 0.
  for (GroupRank bit = 1; bit < n; bit <<= 1) {
    ++st.rounds;
    for (GroupRank r = 0; r < n; ++r) {
      if ((r & bit) != 0 && (r & (bit - 1)) == 0) {
        const GroupRank dst = r - bit;
        const simnet::VirtualTime cost = send(r, dst, Ops::SizeAll(value[r]));
        t[r] += cost;
        t[dst] = std::max(t[dst], t[r]);
        Ops::ReduceAll(value[dst], value[r]);
      }
    }
  }
  st.scatter_reduce_done = t[0];

  // Binomial broadcast of the full result from rank 0: at stage `bit`,
  // every rank that already holds the result (rank divisible by 2*bit)
  // forwards it `bit` ranks to the right.
  GroupRank top = 1;
  while (top < n) top <<= 1;
  for (GroupRank bit = top >> 1; bit >= 1; bit >>= 1) {
    ++st.rounds;
    for (GroupRank r = 0; r + bit < n; ++r) {
      if (r % (2 * bit) == 0) {
        const GroupRank dst = r + bit;
        const simnet::VirtualTime cost = send(r, dst, Ops::SizeAll(value[r]));
        t[r] += cost;
        t[dst] = std::max(t[dst], t[r]);
        value[dst] = value[r];
      }
    }
  }

  st.finish_times.assign(t.begin(), t.end());
  st.all_done = *std::max_element(st.finish_times.begin(),
                                  st.finish_times.end());
}

}  // namespace

DenseAllreduceResult RhdAllreduce::RunDense(
    const GroupComm& group, std::span<const linalg::DenseVector> inputs,
    std::span<const simnet::VirtualTime> starts) const {
  const std::uint64_t dim = detail::CheckDenseInputs(group, inputs, starts);
  DenseAllreduceResult out;
  std::vector<simnet::VirtualTime> t;
  RunRhdCore<DenseOps>(group, inputs, starts, dim, /*sparse=*/false,
                       out.outputs, t, out.stats);
  return out;
}

SparseAllreduceResult RhdAllreduce::RunSparse(
    const GroupComm& group, std::span<const linalg::SparseVector> inputs,
    std::span<const simnet::VirtualTime> starts) const {
  const std::uint64_t dim = detail::CheckSparseInputs(group, inputs, starts);
  SparseAllreduceResult out;
  std::vector<simnet::VirtualTime> t;
  RunRhdCore<SparseOps>(group, inputs, starts, dim, /*sparse=*/true,
                        out.outputs, t, out.stats);
  return out;
}

void RhdAllreduce::ReduceDense(const GroupComm& group,
                               std::span<const linalg::DenseVector> inputs,
                               std::span<const simnet::VirtualTime> starts,
                               AllreduceScratch& scratch,
                               linalg::DenseVector& sum,
                               CommStats& stats) const {
  const std::uint64_t dim = detail::CheckDenseInputs(group, inputs, starts);
  RunRhdCore<DenseOps>(group, inputs, starts, dim, /*sparse=*/false,
                       scratch.dense_values, scratch.times_a, stats);
  sum = scratch.dense_values[0];
}

void RhdAllreduce::ReduceSparse(const GroupComm& group,
                                std::span<const linalg::SparseVector> inputs,
                                std::span<const simnet::VirtualTime> starts,
                                AllreduceScratch& scratch,
                                linalg::SparseVector& sum,
                                CommStats& stats) const {
  const std::uint64_t dim = detail::CheckSparseInputs(group, inputs, starts);
  RunRhdCore<SparseOps>(group, inputs, starts, dim, /*sparse=*/true,
                        scratch.sparse_values, scratch.times_a, stats);
  sum = scratch.sparse_values[0];
}

DenseAllreduceResult TreeAllreduce::RunDense(
    const GroupComm& group, std::span<const linalg::DenseVector> inputs,
    std::span<const simnet::VirtualTime> starts) const {
  detail::CheckDenseInputs(group, inputs, starts);
  DenseAllreduceResult out;
  std::vector<simnet::VirtualTime> t;
  RunTreeCore<DenseOps>(group, inputs, starts, /*sparse=*/false, out.outputs,
                        t, out.stats);
  return out;
}

SparseAllreduceResult TreeAllreduce::RunSparse(
    const GroupComm& group, std::span<const linalg::SparseVector> inputs,
    std::span<const simnet::VirtualTime> starts) const {
  detail::CheckSparseInputs(group, inputs, starts);
  SparseAllreduceResult out;
  std::vector<simnet::VirtualTime> t;
  RunTreeCore<SparseOps>(group, inputs, starts, /*sparse=*/true, out.outputs,
                         t, out.stats);
  return out;
}

void TreeAllreduce::ReduceDense(const GroupComm& group,
                                std::span<const linalg::DenseVector> inputs,
                                std::span<const simnet::VirtualTime> starts,
                                AllreduceScratch& scratch,
                                linalg::DenseVector& sum,
                                CommStats& stats) const {
  detail::CheckDenseInputs(group, inputs, starts);
  RunTreeCore<DenseOps>(group, inputs, starts, /*sparse=*/false,
                        scratch.dense_values, scratch.times_a, stats);
  sum = scratch.dense_values[0];
}

void TreeAllreduce::ReduceSparse(const GroupComm& group,
                                 std::span<const linalg::SparseVector> inputs,
                                 std::span<const simnet::VirtualTime> starts,
                                 AllreduceScratch& scratch,
                                 linalg::SparseVector& sum,
                                 CommStats& stats) const {
  detail::CheckSparseInputs(group, inputs, starts);
  RunTreeCore<SparseOps>(group, inputs, starts, /*sparse=*/true,
                         scratch.sparse_values, scratch.times_a, stats);
  sum = scratch.sparse_values[0];
}

}  // namespace psra::comm
