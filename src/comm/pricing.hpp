// Per-element wire pricing shared by every communication backend.
//
// The paper's traffic accounting (eq. 11-16) prices a message as
//     elements * per-element width
// where a dense element ships its value only and a sparse element ships
// value + index. Both the virtual-time simulator's timing loops
// (allreduce_{psr,ring,naive,extra}.cpp) and the rank-local wire executor
// (wire_allreduce.cpp, running over a real comm::Transport) book traffic
// through this one struct and the shared CountSend formula, so
// bytes_sent / messages_sent / elements_sent are comparable across backends
// BY CONSTRUCTION. The cross-backend conformance suite (tests/test_transport,
// tools/psra_conformance) pins them equal.
#pragma once

#include <cstddef>

namespace psra::comm {

/// Wire width of one element, by payload kind.
struct ElemPricing {
  std::size_t value_bytes = 8;  // double precision
  std::size_t index_bytes = 8;  // 64-bit indices

  std::size_t PerElement(bool sparse) const {
    return sparse ? value_bytes + index_bytes : value_bytes;
  }

  bool operator==(const ElemPricing& other) const = default;
};

namespace detail {

/// The single traffic formula behind every backend's per-message accounting:
/// one posted message carrying `elems` elements priced at `per_elem_bytes`.
inline void CountSend(std::size_t elems, std::size_t per_elem_bytes,
                      std::size_t& elements, std::size_t& messages,
                      std::size_t& bytes) {
  elements += elems;
  ++messages;
  bytes += elems * per_elem_bytes;
}

}  // namespace detail

}  // namespace psra::comm
