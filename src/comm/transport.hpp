// Point-to-point message transport the wire collectives run over.
//
// The simulator executes collectives omnisciently (one call sees every
// member's input and clock); a Transport instead gives each rank the three
// primitives a real network stack offers — nonblocking Post (MPI Isend),
// matched blocking Recv, and Fence (Waitall + barrier) — so the same
// algorithms can run SPMD over OS processes and sockets. Backends:
//
//   * InprocMesh  (src/transport/inproc.hpp): every rank is a thread in one
//     process, delivery through shared mailboxes. Used by unit tests.
//   * TcpTransport (src/transport/tcp.hpp): every rank is an OS process,
//     full-mesh nonblocking TCP sockets driven by a poll loop.
//
// Each endpoint keeps raw wire accounting (payload bytes only — framing
// headers are backend-private, so the numbers stay comparable across
// backends) and can publish it to a MetricsRegistry under transport.* keys.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace psra::obs {
class MetricsRegistry;
class WireObs;
}

namespace psra::comm {

/// Thrown on transport failures: receive timeout, peer death mid-collective,
/// socket errors, rendezvous failure. Distinct from InvalidArgument (caller
/// bug) — a TransportError is an environmental fault the caller may retry.
class TransportError : public Error {
 public:
  explicit TransportError(const std::string& what) : Error(what) {}
};

/// Raw wire accounting for one endpoint. Counts user payload only: internal
/// control traffic (barrier tokens, rendezvous hellos) is excluded so the
/// numbers are backend-independent.
struct TransportStats {
  std::uint64_t bytes_posted = 0;
  std::uint64_t messages_posted = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t fences = 0;

  bool operator==(const TransportStats& other) const = default;
};

class Transport {
 public:
  using Rank = std::uint32_t;
  using Tag = std::uint32_t;

  /// Tags at or above this value are reserved for backend-internal control
  /// traffic (barriers); Post/Recv reject them.
  static constexpr Tag kMaxUserTag = 0xFFFF0000u;

  /// Tags in [kMaxCollectiveTag, kMaxUserTag) are reserved for the obs
  /// collection plane (see comm/wire_obs.hpp). WireCollectives derives its
  /// per-epoch tags below this bound, and harness side channels (stats
  /// shipping in psra_conformance / bench_wire) must stay below it too.
  static constexpr Tag kMaxCollectiveTag = 0xFFFD0000u;

  virtual ~Transport() = default;

  virtual Rank rank() const = 0;
  virtual Rank world_size() const = 0;
  virtual std::string Name() const = 0;

  /// Nonblocking post (MPI Isend): enqueues `payload` for delivery to `dst`.
  /// The bytes are copied out before return, so the caller may reuse the
  /// buffer immediately. Zero-length payloads are legal and delivered (the
  /// sparse collectives use them as "nothing to contribute" markers).
  /// Self-posts (dst == rank()) loop back locally.
  virtual void Post(Rank dst, Tag tag, std::span<const std::byte> payload) = 0;

  /// Blocking matched receive: waits for the next not-yet-consumed message
  /// from `src` carrying `tag` and copies its payload into `out` (resized to
  /// fit). Messages from one src with one tag are delivered in post order.
  /// Throws TransportError when the backend's receive deadline expires or
  /// `src` died before posting.
  virtual void Recv(Rank src, Tag tag, std::vector<std::byte>& out) = 0;

  /// Completes all outstanding posts (MPI Waitall) and then synchronizes all
  /// ranks (barrier): no rank returns before every rank has entered.
  virtual void Fence() = 0;

  const TransportStats& stats() const { return stats_; }

  /// Adds this endpoint's raw counters to `reg`:
  ///   transport.post.bytes / transport.post.msgs
  ///   transport.recv.bytes / transport.recv.msgs
  ///   transport.fences
  void PublishTo(obs::MetricsRegistry& reg) const;

  /// Attaches (nullptr detaches) a per-rank wire observability handle.
  /// While attached, backends record wire_post/wire_recv/wire_fence spans
  /// and wire.* metrics into it; detached costs one branch per call.
  virtual void AttachObs(obs::WireObs* obs) { obs_ = obs; }
  obs::WireObs* attached_obs() const { return obs_; }

  /// Publishes backend-internal queue/pump statistics (per-peer sendq
  /// high-water, poll-wait time, partial writes) into the attached handle's
  /// registry. Counter-style stats flush incrementally (window added, then
  /// reset) so repeated flushes never double-count; gauge-style stats carry
  /// endpoint-lifetime values. No-op without an attached handle or for
  /// backends without queues.
  virtual void FlushWireMetrics() {}

 protected:
  void CountPost(std::size_t bytes) {
    stats_.bytes_posted += bytes;
    ++stats_.messages_posted;
  }
  void CountRecv(std::size_t bytes) {
    stats_.bytes_received += bytes;
    ++stats_.messages_received;
  }
  void CountFence() { ++stats_.fences; }

  void CheckPeer(Rank peer) const {
    PSRA_REQUIRE(peer < world_size(), "transport peer rank out of range");
  }
  static void CheckUserTag(Tag tag) {
    PSRA_REQUIRE(tag < kMaxUserTag, "tag collides with reserved range");
  }

 private:
  TransportStats stats_;
  obs::WireObs* obs_ = nullptr;
};

}  // namespace psra::comm
