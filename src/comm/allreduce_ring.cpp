#include <algorithm>

#include "comm/allreduce_impl.hpp"
#include "support/status.hpp"

namespace psra::comm {

namespace {

// The ring logic is identical for dense and sparse payloads; only the block
// representation, reduction and pricing differ. Ops contract:
//   Block        — per-block payload type
//   Size(b)      — elements serialized when b crosses a link
//   Reduce(d,s)  — d += s
//   (blocks are moved/copied freely)
template <typename Ops>
struct RingRunner {
  using Block = typename Ops::Block;

  const GroupComm& group;
  bool sparse_pricing;
  CommStats stats;

  simnet::VirtualTime Transfer(GroupRank from, GroupRank to,
                               std::size_t elems) {
    const auto& cm = group.cost_model();
    const simnet::Link link = group.LinkBetween(from, to);
    return sparse_pricing ? cm.SparseTransferTime(link, elems)
                          : cm.DenseTransferTime(link, elems);
  }

  /// Runs both phases over `blocks[i][b]`, advancing per-member clocks `t`.
  /// On return, every member holds all fully reduced blocks.
  void Run(std::vector<std::vector<Block>>& blocks,
           std::vector<simnet::VirtualTime>& t) {
    const GroupRank n = group.size();
    if (n == 1) {
      stats.scatter_reduce_done = t[0];
      return;
    }
    auto mod = [n](std::int64_t v) {
      return static_cast<GroupRank>(((v % n) + n) % n);
    };

    // One pipelined round: member i sends block send_block(i) to i+1; the
    // receiver either reduces it into, or replaces, its local copy.
    auto round = [&](auto send_block, bool reduce) {
      std::vector<simnet::VirtualTime> send_done(n);
      std::vector<Block> in_flight(n);
      for (GroupRank i = 0; i < n; ++i) {
        const GroupRank b = send_block(i);
        const std::size_t elems = Ops::Size(blocks[i][b]);
        const simnet::VirtualTime cost = Transfer(i, mod(i + 1), elems);
        send_done[i] = t[i] + cost;
        in_flight[i] = blocks[i][b];
        stats.elements_sent += elems;
        ++stats.messages_sent;
        stats.total_send_time += cost;
      }
      for (GroupRank i = 0; i < n; ++i) {
        const GroupRank pred = mod(static_cast<std::int64_t>(i) - 1);
        const GroupRank b = send_block(pred);  // block arriving at i
        if (reduce) {
          Ops::Reduce(blocks[i][b], in_flight[pred]);
        } else {
          blocks[i][b] = in_flight[pred];
        }
        t[i] = std::max(send_done[i], send_done[pred]);
      }
    };

    // Scatter-Reduce: after round r, member i has the partial sum of block
    // (i-r-1) mod n; after n-1 rounds it owns complete block (i+1) mod n.
    for (GroupRank r = 0; r + 1 < n; ++r) {
      round([&](GroupRank i) { return mod(static_cast<std::int64_t>(i) - r); },
            /*reduce=*/true);
    }
    stats.scatter_reduce_done = *std::max_element(t.begin(), t.end());

    // Allgather: circulate the complete blocks.
    for (GroupRank r = 0; r + 1 < n; ++r) {
      round(
          [&](GroupRank i) {
            return mod(static_cast<std::int64_t>(i) + 1 - r);
          },
          /*reduce=*/false);
    }
  }
};

struct DenseOps {
  using Block = linalg::DenseVector;
  static std::size_t Size(const Block& b) { return b.size(); }
  static void Reduce(Block& dst, const Block& src) {
    linalg::Axpy(1.0, src, dst);
  }
};

struct SparseOps {
  using Block = linalg::SparseVector;
  static std::size_t Size(const Block& b) { return b.nnz(); }
  static void Reduce(Block& dst, const Block& src) {
    dst = linalg::SparseVector::Sum(dst, src);
  }
};

}  // namespace

DenseAllreduceResult RingAllreduce::RunDense(
    const GroupComm& group, std::span<const linalg::DenseVector> inputs,
    std::span<const simnet::VirtualTime> starts) const {
  const std::uint64_t dim = detail::CheckDenseInputs(group, inputs, starts);
  const GroupRank n = group.size();

  // Split every input into the n rank-owned blocks.
  std::vector<std::vector<linalg::DenseVector>> blocks(n);
  for (GroupRank i = 0; i < n; ++i) {
    blocks[i].resize(n);
    for (GroupRank b = 0; b < n; ++b) {
      const auto [lo, hi] = group.BlockRange(dim, b);
      blocks[i][b].assign(inputs[i].begin() + static_cast<std::ptrdiff_t>(lo),
                          inputs[i].begin() + static_cast<std::ptrdiff_t>(hi));
    }
  }

  std::vector<simnet::VirtualTime> t(starts.begin(), starts.end());
  RingRunner<DenseOps> runner{group, /*sparse_pricing=*/false, {}};
  runner.Run(blocks, t);

  DenseAllreduceResult out;
  out.outputs.resize(n);
  for (GroupRank i = 0; i < n; ++i) {
    out.outputs[i].resize(static_cast<std::size_t>(dim));
    for (GroupRank b = 0; b < n; ++b) {
      const auto [lo, hi] = group.BlockRange(dim, b);
      std::copy(blocks[i][b].begin(), blocks[i][b].end(),
                out.outputs[i].begin() + static_cast<std::ptrdiff_t>(lo));
    }
  }
  out.stats = std::move(runner.stats);
  out.stats.finish_times = std::move(t);
  out.stats.all_done = *std::max_element(out.stats.finish_times.begin(),
                                         out.stats.finish_times.end());
  return out;
}

SparseAllreduceResult RingAllreduce::RunSparse(
    const GroupComm& group, std::span<const linalg::SparseVector> inputs,
    std::span<const simnet::VirtualTime> starts) const {
  const std::uint64_t dim = detail::CheckSparseInputs(group, inputs, starts);
  const GroupRank n = group.size();

  std::vector<std::vector<linalg::SparseVector>> blocks(n);
  for (GroupRank i = 0; i < n; ++i) {
    blocks[i].resize(n);
    for (GroupRank b = 0; b < n; ++b) {
      const auto [lo, hi] = group.BlockRange(dim, b);
      blocks[i][b] = inputs[i].Slice(lo, hi);
    }
  }

  std::vector<simnet::VirtualTime> t(starts.begin(), starts.end());
  RingRunner<SparseOps> runner{group, /*sparse_pricing=*/true, {}};
  runner.Run(blocks, t);

  SparseAllreduceResult out;
  out.outputs.resize(n);
  for (GroupRank i = 0; i < n; ++i) {
    out.outputs[i] = linalg::SparseVector::ConcatDisjoint(blocks[i]);
  }
  out.stats = std::move(runner.stats);
  out.stats.finish_times = std::move(t);
  out.stats.all_done = *std::max_element(out.stats.finish_times.begin(),
                                         out.stats.finish_times.end());
  return out;
}

}  // namespace psra::comm
