#include <algorithm>

#include "comm/allreduce_impl.hpp"
#include "support/status.hpp"

namespace psra::comm {

namespace {

// The ring logic is identical for dense and sparse payloads; only the block
// representation, reduction and pricing differ. Ops contract:
//   Block        — per-block payload type
//   Size(b)      — elements serialized when b crosses a link
//   Reduce(d,s)  — d += s
//   (blocks are moved/copied freely)
// All working storage (the block matrix, per-round in-flight copies and
// send-completion times) is borrowed from the caller so repeated invocations
// recycle it.
template <typename Ops>
struct RingRunner {
  using Block = typename Ops::Block;

  const GroupComm& group;
  bool sparse_pricing;
  CommStats& stats;

  simnet::VirtualTime Transfer(GroupRank from, GroupRank to,
                               std::size_t elems) {
    const auto& cm = group.cost_model();
    const simnet::Link link = group.LinkBetween(from, to);
    return sparse_pricing ? cm.SparseTransferTime(link, elems)
                          : cm.DenseTransferTime(link, elems);
  }

  /// Runs both phases over `blocks[i][b]`, advancing per-member clocks `t`.
  /// On return, every member holds all fully reduced blocks.
  void Run(std::vector<std::vector<Block>>& blocks,
           std::vector<simnet::VirtualTime>& t,
           std::vector<simnet::VirtualTime>& send_done,
           std::vector<Block>& in_flight) {
    const GroupRank n = group.size();
    if (n == 1) {
      stats.scatter_reduce_done = t[0];
      return;
    }
    send_done.resize(n);
    in_flight.resize(n);
    auto mod = [n](std::int64_t v) {
      return static_cast<GroupRank>(((v % n) + n) % n);
    };

    const std::size_t elem_bytes = group.pricing().PerElement(sparse_pricing);

    // One pipelined round: member i sends block send_block(i) to i+1; the
    // receiver either reduces it into, or replaces, its local copy.
    auto round = [&](auto send_block, bool reduce) {
      ++stats.rounds;
      for (GroupRank i = 0; i < n; ++i) {
        const GroupRank b = send_block(i);
        const std::size_t elems = Ops::Size(blocks[i][b]);
        const simnet::VirtualTime cost = Transfer(i, mod(i + 1), elems);
        send_done[i] = t[i] + cost;
        in_flight[i] = blocks[i][b];
        stats.CountSend(elems, elem_bytes);
        stats.total_send_time += cost;
      }
      for (GroupRank i = 0; i < n; ++i) {
        const GroupRank pred = mod(static_cast<std::int64_t>(i) - 1);
        const GroupRank b = send_block(pred);  // block arriving at i
        if (reduce) {
          Ops::Reduce(blocks[i][b], in_flight[pred]);
        } else {
          blocks[i][b] = in_flight[pred];
        }
        t[i] = std::max(send_done[i], send_done[pred]);
      }
    };

    // Scatter-Reduce: after round r, member i has the partial sum of block
    // (i-r-1) mod n; after n-1 rounds it owns complete block (i+1) mod n.
    for (GroupRank r = 0; r + 1 < n; ++r) {
      round([&](GroupRank i) { return mod(static_cast<std::int64_t>(i) - r); },
            /*reduce=*/true);
    }
    stats.scatter_reduce_done = *std::max_element(t.begin(), t.end());

    // Allgather: circulate the complete blocks.
    for (GroupRank r = 0; r + 1 < n; ++r) {
      round(
          [&](GroupRank i) {
            return mod(static_cast<std::int64_t>(i) + 1 - r);
          },
          /*reduce=*/false);
    }
  }
};

struct DenseOps {
  using Block = linalg::DenseVector;
  static std::size_t Size(const Block& b) { return b.size(); }
  static void Reduce(Block& dst, const Block& src) {
    linalg::Axpy(1.0, src, dst);
  }
};

struct SparseOps {
  using Block = linalg::SparseVector;
  static std::size_t Size(const Block& b) { return b.nnz(); }
  static void Reduce(Block& dst, const Block& src) {
    dst = linalg::SparseVector::Sum(dst, src);
  }
};

}  // namespace

void RingAllreduce::ReduceDense(const GroupComm& group,
                                std::span<const linalg::DenseVector> inputs,
                                std::span<const simnet::VirtualTime> starts,
                                AllreduceScratch& scratch,
                                linalg::DenseVector& sum,
                                CommStats& stats) const {
  const std::uint64_t dim = detail::CheckDenseInputs(group, inputs, starts);
  const GroupRank n = group.size();
  stats.Reset(n);

  // Split every input into the n rank-owned blocks.
  auto& blocks = scratch.dense_ring;
  blocks.resize(n);
  for (GroupRank i = 0; i < n; ++i) {
    blocks[i].resize(n);
    for (GroupRank b = 0; b < n; ++b) {
      const auto [lo, hi] = group.BlockRange(dim, b);
      blocks[i][b].assign(inputs[i].begin() + static_cast<std::ptrdiff_t>(lo),
                          inputs[i].begin() + static_cast<std::ptrdiff_t>(hi));
    }
  }

  auto& t = scratch.times_a;
  t.assign(starts.begin(), starts.end());
  RingRunner<DenseOps> runner{group, /*sparse_pricing=*/false, stats};
  runner.Run(blocks, t, scratch.times_b, scratch.dense_in_flight);

  // Member 0's reduced blocks are the group sum (every member holds the same
  // values after allgather).
  sum.resize(static_cast<std::size_t>(dim));
  for (GroupRank b = 0; b < n; ++b) {
    const auto [lo, hi] = group.BlockRange(dim, b);
    std::copy(blocks[0][b].begin(), blocks[0][b].end(),
              sum.begin() + static_cast<std::ptrdiff_t>(lo));
  }
  stats.finish_times.assign(t.begin(), t.end());
  stats.all_done = *std::max_element(stats.finish_times.begin(),
                                     stats.finish_times.end());
}

void RingAllreduce::ReduceSparse(const GroupComm& group,
                                 std::span<const linalg::SparseVector> inputs,
                                 std::span<const simnet::VirtualTime> starts,
                                 AllreduceScratch& scratch,
                                 linalg::SparseVector& sum,
                                 CommStats& stats) const {
  const std::uint64_t dim = detail::CheckSparseInputs(group, inputs, starts);
  const GroupRank n = group.size();
  stats.Reset(n);

  auto& blocks = scratch.sparse_ring;
  blocks.resize(n);
  for (GroupRank i = 0; i < n; ++i) {
    blocks[i].resize(n);
    for (GroupRank b = 0; b < n; ++b) {
      const auto [lo, hi] = group.BlockRange(dim, b);
      inputs[i].SliceInto(lo, hi, blocks[i][b]);
    }
  }

  auto& t = scratch.times_a;
  t.assign(starts.begin(), starts.end());
  RingRunner<SparseOps> runner{group, /*sparse_pricing=*/true, stats};
  runner.Run(blocks, t, scratch.times_b, scratch.sparse_in_flight);

  linalg::SparseVector::ConcatDisjointInto(blocks[0], sum);
  stats.finish_times.assign(t.begin(), t.end());
  stats.all_done = *std::max_element(stats.finish_times.begin(),
                                     stats.finish_times.end());
}

DenseAllreduceResult RingAllreduce::RunDense(
    const GroupComm& group, std::span<const linalg::DenseVector> inputs,
    std::span<const simnet::VirtualTime> starts) const {
  AllreduceScratch scratch;
  DenseAllreduceResult out;
  linalg::DenseVector sum;
  ReduceDense(group, inputs, starts, scratch, sum, out.stats);
  out.outputs.assign(group.size(), sum);
  return out;
}

SparseAllreduceResult RingAllreduce::RunSparse(
    const GroupComm& group, std::span<const linalg::SparseVector> inputs,
    std::span<const simnet::VirtualTime> starts) const {
  AllreduceScratch scratch;
  SparseAllreduceResult out;
  linalg::SparseVector sum;
  ReduceSparse(group, inputs, starts, scratch, sum, out.stats);
  out.outputs.assign(group.size(), sum);
  return out;
}

}  // namespace psra::comm
