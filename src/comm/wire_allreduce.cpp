#include "comm/wire_allreduce.hpp"

#include <cstring>
#include <string>

#include "obs/wire.hpp"
#include "support/status.hpp"

namespace psra::comm {

namespace {

using Rank = Transport::Rank;
using Tag = Transport::Tag;

const char* AlgName(AllreduceKind kind) {
  switch (kind) {
    case AllreduceKind::kPsr: return "psr";
    case AllreduceKind::kRing: return "ring";
    case AllreduceKind::kNaive: return "naive";
    default: return "other";
  }
}

/// RAII per-stage instrumentation: one span named after the stage plus one
/// observation in the wire.phase.<stage>.wall_s histogram. `name` must be a
/// string literal (spans store the pointer). Null obs costs one branch.
struct StageSpan {
  obs::WireObs* obs;
  const char* name;
  double begin = 0.0;

  StageSpan(obs::WireObs* o, const char* n) : obs(o), name(n) {
    if (obs != nullptr) begin = obs->Now();
  }
  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;
  ~StageSpan() {
    if (obs == nullptr) return;
    const double end = obs->Now();
    obs->tracer().Add(obs->track(), name, begin, end, obs->iteration,
                      end - begin);
    obs->metrics()
        .Histo(std::string("wire.phase.") + name + ".wall_s",
               obs::WireLatencyBounds())
        .Observe(end - begin);
  }
};

/// Same ownership split as GroupComm::BlockRange.
std::pair<std::uint64_t, std::uint64_t> BlockRange(std::uint64_t dim,
                                                   GroupRank g, GroupRank n) {
  const std::uint64_t nn = n;
  return {dim * g / nn, dim * (g + 1) / nn};
}

/// Group-rank addressing over the transport: members[g] is the transport
/// rank of group rank g. Payloads are staged in reusable byte buffers.
struct Wire {
  Transport& t;
  std::span<const Rank> members;
  GroupRank me = 0;
  obs::WireObs* obs = nullptr;

  Wire(Transport& transport, std::span<const Rank> m,
       obs::WireObs* o = nullptr)
      : t(transport), members(m), obs(o) {
    PSRA_REQUIRE(!m.empty(), "wire collective needs at least one member");
    bool found = false;
    for (std::size_t i = 0; i < m.size(); ++i) {
      PSRA_REQUIRE(m[i] < t.world_size(), "member rank out of range");
      for (std::size_t j = i + 1; j < m.size(); ++j) {
        PSRA_REQUIRE(m[i] != m[j], "member ranks must be distinct");
      }
      if (m[i] == t.rank()) {
        me = static_cast<GroupRank>(i);
        found = true;
      }
    }
    PSRA_REQUIRE(found, "calling rank is not a member of this collective");
  }

  GroupRank size() const { return static_cast<GroupRank>(members.size()); }

  void PostDense(GroupRank dst, Tag tag, std::span<const double> x) {
    t.Post(members[dst], tag,
           std::as_bytes(std::span<const double>(x)));
  }

  /// Receives exactly `out.size()` doubles from group rank `src`.
  void RecvDense(GroupRank src, Tag tag, std::span<double> out,
                 std::vector<std::byte>& buf) {
    t.Recv(members[src], tag, buf);
    PSRA_REQUIRE(buf.size() == out.size() * sizeof(double),
                 "dense payload size mismatch");
    std::memcpy(out.data(), buf.data(), buf.size());
  }

  /// Sparse payload: u64 nnz | nnz * u64 index | nnz * double value.
  void PostSparse(GroupRank dst, Tag tag, const linalg::SparseVector& v,
                  std::vector<std::byte>& buf) {
    const std::uint64_t nnz = v.nnz();
    buf.resize(sizeof(std::uint64_t) * (1 + nnz) + sizeof(double) * nnz);
    std::byte* p = buf.data();
    std::memcpy(p, &nnz, sizeof(nnz));
    p += sizeof(nnz);
    std::memcpy(p, v.indices().data(), nnz * sizeof(std::uint64_t));
    p += nnz * sizeof(std::uint64_t);
    std::memcpy(p, v.values().data(), nnz * sizeof(double));
    t.Post(members[dst], tag, buf);
  }

  void RecvSparse(GroupRank src, Tag tag, std::uint64_t dim,
                  linalg::SparseVector& out, std::vector<std::byte>& buf,
                  std::vector<std::uint64_t>& idx, std::vector<double>& val) {
    t.Recv(members[src], tag, buf);
    PSRA_REQUIRE(buf.size() >= sizeof(std::uint64_t),
                 "sparse payload too short");
    std::uint64_t nnz = 0;
    const std::byte* p = buf.data();
    std::memcpy(&nnz, p, sizeof(nnz));
    p += sizeof(nnz);
    PSRA_REQUIRE(buf.size() == sizeof(std::uint64_t) * (1 + nnz) +
                                   sizeof(double) * nnz,
                 "sparse payload size mismatch");
    idx.resize(nnz);
    val.resize(nnz);
    std::memcpy(idx.data(), p, nnz * sizeof(std::uint64_t));
    p += nnz * sizeof(std::uint64_t);
    std::memcpy(val.data(), p, nnz * sizeof(double));
    out = linalg::SparseVector(dim, idx, val);
  }
};

// Reused receive/serialize scratch, one set per collective invocation.
struct Scratch {
  std::vector<std::byte> bytes;
  std::vector<std::uint64_t> idx;
  std::vector<double> val;
  linalg::DenseVector dense_a, dense_b;
  linalg::SparseVector sp_a, sp_b, sp_c;
  std::vector<linalg::SparseVector> sp_blocks;
  std::vector<linalg::DenseVector> dn_blocks;
};

// ---------------------------------------------------------------------------
// PSR (paper Section 4.2): direct scatter to block owners, then allgather.

void PsrDense(Wire& w, Tag base, ElemPricing pr,
              const linalg::DenseVector& input, linalg::DenseVector& out,
              Scratch& sc, WireStats& st) {
  const GroupRank n = w.size();
  const std::uint64_t dim = input.size();
  const std::size_t eb = pr.PerElement(false);
  out.assign(dim, 0.0);
  if (n == 1) {  // simulator arithmetic: sum = zeros + input
    linalg::Axpy(1.0, input, out);
    return;
  }

  const auto [mlo, mhi] = BlockRange(dim, w.me, n);
  const std::size_t mlen = static_cast<std::size_t>(mhi - mlo);
  auto& acc = sc.dense_a;
  {
    StageSpan stage(w.obs, "scatter_reduce");
    // Scatter-reduce: post my slice of every foreign block to its owner.
    for (GroupRank j = 0; j < n; ++j) {
      if (j == w.me) continue;
      const auto [lo, hi] = BlockRange(dim, j, n);
      w.PostDense(j, base,
                  std::span<const double>(input).subspan(lo, hi - lo));
      st.CountSend(static_cast<std::size_t>(hi - lo), eb);
    }
    ++st.rounds;

    // Reduce my block in ascending contributor order into zeros.
    acc.assign(mlen, 0.0);
    for (GroupRank g = 0; g < n; ++g) {
      if (g == w.me) {
        linalg::Axpy(1.0, std::span<const double>(input).subspan(mlo, mlen),
                     acc);
      } else {
        auto& recv = sc.dense_b;
        recv.resize(mlen);
        w.RecvDense(g, base, recv, sc.bytes);
        linalg::Axpy(1.0, recv, acc);
      }
    }
  }

  {
    StageSpan stage(w.obs, "allgather");
    // Allgather: broadcast my reduced block, collect the others.
    for (GroupRank m = 0; m < n; ++m) {
      if (m == w.me) continue;
      w.PostDense(m, base + 1, acc);
      st.CountSend(mlen, eb);
    }
    std::copy(acc.begin(), acc.end(),
              out.begin() + static_cast<std::ptrdiff_t>(mlo));
    for (GroupRank b = 0; b < n; ++b) {
      if (b == w.me) continue;
      const auto [lo, hi] = BlockRange(dim, b, n);
      w.RecvDense(b, base + 1,
                  std::span<double>(out.data() + lo,
                                    static_cast<std::size_t>(hi - lo)),
                  sc.bytes);
    }
    ++st.rounds;
  }
}

void PsrSparse(Wire& w, Tag base, ElemPricing pr,
               const linalg::SparseVector& input, linalg::SparseVector& out,
               Scratch& sc, WireStats& st) {
  const GroupRank n = w.size();
  const std::uint64_t dim = input.dim();
  const std::size_t eb = pr.PerElement(true);
  if (n == 1) {  // simulator: reduced block = inputs[0] slice, concatenated
    out = input;
    return;
  }

  const auto [mlo, mhi] = BlockRange(dim, w.me, n);
  auto& acc = sc.sp_b;
  {
    StageSpan stage(w.obs, "scatter_reduce");
    // Scatter-reduce: ship my slice of every foreign block to its owner.
    // Empty slices still travel (the owner expects one frame per
    // contributor) but are NOT counted — exactly where the simulator skips
    // them.
    for (GroupRank j = 0; j < n; ++j) {
      if (j == w.me) continue;
      const auto [lo, hi] = BlockRange(dim, j, n);
      input.SliceInto(lo, hi, sc.sp_a);
      w.PostSparse(j, base, sc.sp_a, sc.bytes);
      if (sc.sp_a.nnz() > 0) st.CountSend(sc.sp_a.nnz(), eb);
    }
    ++st.rounds;

    // Reduce my block: start from rank 0's slice, SumInto ascending.
    for (GroupRank g = 0; g < n; ++g) {
      linalg::SparseVector* contrib = &sc.sp_a;
      if (g == w.me) {
        input.SliceInto(mlo, mhi, sc.sp_a);
      } else {
        w.RecvSparse(g, base, dim, sc.sp_a, sc.bytes, sc.idx, sc.val);
      }
      if (g == 0) {
        acc = *contrib;
      } else {
        linalg::SparseVector::SumInto(acc, *contrib, sc.sp_c);
        std::swap(acc, sc.sp_c);
      }
    }
  }

  auto& blocks = sc.sp_blocks;
  {
    StageSpan stage(w.obs, "allgather");
    // Allgather the reduced blocks; empty reduced blocks ship but don't
    // count.
    for (GroupRank m = 0; m < n; ++m) {
      if (m == w.me) continue;
      w.PostSparse(m, base + 1, acc, sc.bytes);
      if (acc.nnz() > 0) st.CountSend(acc.nnz(), eb);
    }
    blocks.resize(n);
    blocks[w.me] = acc;
    for (GroupRank b = 0; b < n; ++b) {
      if (b == w.me) continue;
      w.RecvSparse(b, base + 1, dim, blocks[b], sc.bytes, sc.idx, sc.val);
    }
    ++st.rounds;
  }
  linalg::SparseVector::ConcatDisjointInto(blocks, out);
}

// ---------------------------------------------------------------------------
// Ring: pipelined scatter-reduce + allgather. The receiver folds the
// incoming partial INTO its local block (dst += src) — the simulator's
// RingRunner order, which is NOT ascending-rank.

template <typename Block, typename PostFn, typename RecvFn, typename SizeFn,
          typename ReduceFn>
void RingSchedule(Wire& w, Tag base, ElemPricing pr, bool sparse,
                  std::vector<Block>& blocks, PostFn post, RecvFn recv,
                  SizeFn size, ReduceFn reduce, WireStats& st) {
  const GroupRank n = w.size();
  const std::int64_t me = w.me;
  auto mod = [n](std::int64_t v) {
    return static_cast<GroupRank>(((v % n) + n) % n);
  };
  const GroupRank succ = mod(me + 1);
  const GroupRank pred = mod(me - 1);
  const std::size_t eb = pr.PerElement(sparse);

  Block incoming{};
  {
    StageSpan stage(w.obs, "scatter_reduce");
    // Scatter-reduce: after round r I own a deeper partial of block
    // (me-r-1).
    for (GroupRank r = 0; r + 1 < n; ++r) {
      const GroupRank s = mod(me - r);
      post(succ, base, blocks[s]);
      st.CountSend(size(blocks[s]), eb);
      ++st.rounds;
      const GroupRank b = mod(static_cast<std::int64_t>(pred) - r);
      recv(pred, base, incoming);
      reduce(blocks[b], incoming);
    }
  }
  {
    StageSpan stage(w.obs, "allgather");
    // Allgather: circulate the completed blocks, replacing local copies.
    for (GroupRank r = 0; r + 1 < n; ++r) {
      const GroupRank s = mod(me + 1 - r);
      post(succ, base + 1, blocks[s]);
      st.CountSend(size(blocks[s]), eb);
      ++st.rounds;
      const GroupRank b = mod(static_cast<std::int64_t>(pred) + 1 - r);
      recv(pred, base + 1, incoming);
      blocks[b] = incoming;
    }
  }
}

void RingDense(Wire& w, Tag base, ElemPricing pr,
               const linalg::DenseVector& input, linalg::DenseVector& out,
               Scratch& sc, WireStats& st) {
  const GroupRank n = w.size();
  const std::uint64_t dim = input.size();
  auto& blocks = sc.dn_blocks;
  blocks.resize(n);
  for (GroupRank b = 0; b < n; ++b) {
    const auto [lo, hi] = BlockRange(dim, b, n);
    blocks[b].assign(input.begin() + static_cast<std::ptrdiff_t>(lo),
                     input.begin() + static_cast<std::ptrdiff_t>(hi));
  }
  if (n > 1) {
    RingSchedule<linalg::DenseVector>(
        w, base, pr, /*sparse=*/false, blocks,
        [&](GroupRank dst, Tag tag, const linalg::DenseVector& x) {
          w.PostDense(dst, tag, x);
        },
        [&](GroupRank src, Tag tag, linalg::DenseVector& x) {
          w.t.Recv(w.members[src], tag, sc.bytes);
          x.resize(sc.bytes.size() / sizeof(double));
          std::memcpy(x.data(), sc.bytes.data(), sc.bytes.size());
        },
        [](const linalg::DenseVector& x) { return x.size(); },
        [](linalg::DenseVector& dst, const linalg::DenseVector& src) {
          linalg::Axpy(1.0, src, dst);
        },
        st);
  }
  out.resize(dim);
  for (GroupRank b = 0; b < n; ++b) {
    const auto [lo, hi] = BlockRange(dim, b, n);
    std::copy(blocks[b].begin(), blocks[b].end(),
              out.begin() + static_cast<std::ptrdiff_t>(lo));
  }
}

void RingSparse(Wire& w, Tag base, ElemPricing pr,
                const linalg::SparseVector& input, linalg::SparseVector& out,
                Scratch& sc, WireStats& st) {
  const GroupRank n = w.size();
  const std::uint64_t dim = input.dim();
  auto& blocks = sc.sp_blocks;
  blocks.resize(n);
  for (GroupRank b = 0; b < n; ++b) {
    const auto [lo, hi] = BlockRange(dim, b, n);
    input.SliceInto(lo, hi, blocks[b]);
  }
  if (n > 1) {
    RingSchedule<linalg::SparseVector>(
        w, base, pr, /*sparse=*/true, blocks,
        [&](GroupRank dst, Tag tag, const linalg::SparseVector& x) {
          w.PostSparse(dst, tag, x, sc.bytes);
        },
        [&](GroupRank src, Tag tag, linalg::SparseVector& x) {
          w.RecvSparse(src, tag, dim, x, sc.bytes, sc.idx, sc.val);
        },
        [](const linalg::SparseVector& x) { return x.nnz(); },
        [](linalg::SparseVector& dst, const linalg::SparseVector& src) {
          dst = linalg::SparseVector::Sum(dst, src);
        },
        st);
  }
  linalg::SparseVector::ConcatDisjointInto(blocks, out);
}

// ---------------------------------------------------------------------------
// Naive: gather everything at group rank 0, reduce there, broadcast back.

void NaiveDense(Wire& w, Tag base, ElemPricing pr,
                const linalg::DenseVector& input, linalg::DenseVector& out,
                Scratch& sc, WireStats& st) {
  const GroupRank n = w.size();
  const std::uint64_t dim = input.size();
  const std::size_t eb = pr.PerElement(false);
  if (n == 1) {  // simulator arithmetic: sum = zeros + input
    out.assign(dim, 0.0);
    linalg::Axpy(1.0, input, out);
    return;
  }
  if (w.me == 0) {
    {
      StageSpan stage(w.obs, "gather");
      out.assign(dim, 0.0);
      auto& recv = sc.dense_a;
      recv.resize(dim);
      for (GroupRank g = 0; g < n; ++g) {
        if (g == 0) {
          linalg::Axpy(1.0, input, out);
        } else {
          w.RecvDense(g, base, recv, sc.bytes);
          linalg::Axpy(1.0, recv, out);
        }
      }
      ++st.rounds;  // gather phase
    }
    StageSpan stage(w.obs, "broadcast");
    for (GroupRank g = 1; g < n; ++g) {
      w.PostDense(g, base + 1, out);
      st.CountSend(dim, eb);
    }
    ++st.rounds;  // broadcast phase
  } else {
    {
      StageSpan stage(w.obs, "gather");
      w.PostDense(0, base, input);
      st.CountSend(dim, eb);
      ++st.rounds;
    }
    StageSpan stage(w.obs, "broadcast");
    out.resize(dim);
    w.RecvDense(0, base + 1, out, sc.bytes);
    ++st.rounds;
  }
}

void NaiveSparse(Wire& w, Tag base, ElemPricing pr,
                 const linalg::SparseVector& input, linalg::SparseVector& out,
                 Scratch& sc, WireStats& st) {
  const GroupRank n = w.size();
  const std::uint64_t dim = input.dim();
  const std::size_t eb = pr.PerElement(true);
  if (n == 1) {  // simulator: sum = inputs[0]
    out = input;
    return;
  }
  if (w.me == 0) {
    {
      StageSpan stage(w.obs, "gather");
      out = input;  // inputs[0], then SumInto ascending
      for (GroupRank g = 1; g < n; ++g) {
        w.RecvSparse(g, base, dim, sc.sp_a, sc.bytes, sc.idx, sc.val);
        linalg::SparseVector::SumInto(out, sc.sp_a, sc.sp_b);
        std::swap(out, sc.sp_b);
      }
      ++st.rounds;
    }
    StageSpan stage(w.obs, "broadcast");
    // Broadcast: the simulator books every message, even a zero-nnz sum.
    for (GroupRank g = 1; g < n; ++g) {
      w.PostSparse(g, base + 1, out, sc.bytes);
      st.CountSend(out.nnz(), eb);
    }
    ++st.rounds;
  } else {
    {
      StageSpan stage(w.obs, "gather");
      // Empty contributions ship but don't count (simulator skips them).
      w.PostSparse(0, base, input, sc.bytes);
      if (input.nnz() > 0) st.CountSend(input.nnz(), eb);
      ++st.rounds;
    }
    StageSpan stage(w.obs, "broadcast");
    w.RecvSparse(0, base + 1, dim, out, sc.bytes, sc.idx, sc.val);
    ++st.rounds;
  }
}

void RunDense(AllreduceKind kind, Wire& w, Tag base, ElemPricing pr,
              const linalg::DenseVector& input, linalg::DenseVector& out,
              Scratch& sc, WireStats& st) {
  switch (kind) {
    case AllreduceKind::kPsr:
      PsrDense(w, base, pr, input, out, sc, st);
      return;
    case AllreduceKind::kRing:
      RingDense(w, base, pr, input, out, sc, st);
      return;
    case AllreduceKind::kNaive:
      NaiveDense(w, base, pr, input, out, sc, st);
      return;
    default:
      throw InvalidArgument("wire collectives support psr, ring and naive");
  }
}

void RunSparse(AllreduceKind kind, Wire& w, Tag base, ElemPricing pr,
               const linalg::SparseVector& input, linalg::SparseVector& out,
               Scratch& sc, WireStats& st) {
  switch (kind) {
    case AllreduceKind::kPsr:
      PsrSparse(w, base, pr, input, out, sc, st);
      return;
    case AllreduceKind::kRing:
      RingSparse(w, base, pr, input, out, sc, st);
      return;
    case AllreduceKind::kNaive:
      NaiveSparse(w, base, pr, input, out, sc, st);
      return;
    default:
      throw InvalidArgument("wire collectives support psr, ring and naive");
  }
}

constexpr Tag kTagsPerEpoch = 4;

/// Records the enclosing collective span + wire.collective.<alg>.wall_s
/// observation and leaves the transport's iteration label. Call only with a
/// non-null obs.
void FinishCollective(obs::WireObs* obs, const char* span_name,
                      const std::string& alg, double begin) {
  const double end = obs->Now();
  obs->tracer().Add(obs->track(), span_name, begin, end, obs->iteration,
                    end - begin);
  obs->metrics()
      .Histo(std::string("wire.collective.") + alg + ".wall_s",
             obs::WireLatencyBounds())
      .Observe(end - begin);
  obs->iteration = 0;
}

}  // namespace

Transport::Tag WireCollectives::NextBaseTag() {
  const Tag base = epoch_ * kTagsPerEpoch;
  PSRA_CHECK(base + kTagsPerEpoch <= Transport::kMaxCollectiveTag,
             "wire collective tag space exhausted");
  ++epoch_;
  return base;
}

void WireCollectives::AllreduceDense(AllreduceKind kind,
                                     std::span<const Transport::Rank> members,
                                     const linalg::DenseVector& input,
                                     linalg::DenseVector& out, WireStats& st) {
  st.Reset();
  Wire w(transport_, members, obs_);
  Scratch sc;
  const Tag base = NextBaseTag();
  if (obs_ == nullptr) {
    RunDense(kind, w, base, pricing_, input, out, sc, st);
    return;
  }
  obs_->iteration = epoch_;  // 1-based collective epoch, lockstep everywhere
  const double begin = obs_->Now();
  RunDense(kind, w, base, pricing_, input, out, sc, st);
  FinishCollective(obs_, "wire_allreduce", AlgName(kind), begin);
}

void WireCollectives::AllreduceSparse(AllreduceKind kind,
                                      std::span<const Transport::Rank> members,
                                      const linalg::SparseVector& input,
                                      linalg::SparseVector& out,
                                      WireStats& st) {
  st.Reset();
  Wire w(transport_, members, obs_);
  Scratch sc;
  const Tag base = NextBaseTag();
  if (obs_ == nullptr) {
    RunSparse(kind, w, base, pricing_, input, out, sc, st);
    return;
  }
  obs_->iteration = epoch_;
  const double begin = obs_->Now();
  RunSparse(kind, w, base, pricing_, input, out, sc, st);
  FinishCollective(obs_, "wire_allreduce", AlgName(kind), begin);
}

namespace {

/// Shared rack/leader geometry for the multi-level entry points.
struct Hierarchy {
  std::span<const Rank> rack;     // my rack's members
  std::vector<Rank> leaders;      // first member of each rack
  std::uint32_t my_rack = 0;
  bool is_leader = false;
  Rank my_leader = 0;             // transport rank of my rack's leader
  std::uint32_t per_rack = 0;

  Hierarchy(const Transport& t, std::span<const Rank> members,
            std::uint32_t per_rack_in) {
    per_rack = per_rack_in;
    PSRA_REQUIRE(per_rack > 0 && members.size() % per_rack == 0,
                 "members must split into equal racks");
    const std::size_t racks = members.size() / per_rack;
    leaders.reserve(racks);
    std::size_t my_index = members.size();
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i] == t.rank()) my_index = i;
    }
    PSRA_REQUIRE(my_index < members.size(),
                 "calling rank is not a member of this collective");
    for (std::size_t r = 0; r < racks; ++r) {
      leaders.push_back(members[r * per_rack]);
    }
    my_rack = static_cast<std::uint32_t>(my_index / per_rack);
    rack = members.subspan(static_cast<std::size_t>(my_rack) * per_rack,
                           per_rack);
    is_leader = my_index % per_rack == 0;
    my_leader = rack[0];
  }
};

void FoldStageTraffic(WireStats& st, const WireStats& stage) {
  st.elements_sent += stage.elements_sent;
  st.messages_sent += stage.messages_sent;
  st.bytes_sent += stage.bytes_sent;
}

}  // namespace

void WireCollectives::MultiLevelDense(AllreduceKind kind,
                                      std::span<const Transport::Rank> members,
                                      std::uint32_t per_rack,
                                      const linalg::DenseVector& input,
                                      linalg::DenseVector& out, WireStats& st) {
  st.Reset();
  Hierarchy h(transport_, members, per_rack);
  // Epochs advance identically on every rank, leader or not.
  const Tag rack_tag = NextBaseTag();
  const Tag root_tag = NextBaseTag();
  const Tag redist_tag = NextBaseTag();
  const double obs_begin = obs_ != nullptr ? obs_->Now() : 0.0;
  if (obs_ != nullptr) obs_->iteration = epoch_;

  Scratch sc;
  WireStats stage;
  linalg::DenseVector rack_sum;
  {
    Wire w(transport_, h.rack, obs_);
    RunDense(kind, w, rack_tag, pricing_, input, rack_sum, sc, stage);
  }
  FoldStageTraffic(st, stage);
  st.rack_rounds = stage.rounds;

  if (h.is_leader) {
    stage.Reset();
    Wire w(transport_, h.leaders, obs_);
    RunDense(kind, w, root_tag, pricing_, rack_sum, out, sc, stage);
    FoldStageTraffic(st, stage);
    st.root_rounds = stage.rounds;
    // Redistribute: serialize the global sum to my rack peers (ascending),
    // accounted separately like the simulator's stage 3.
    StageSpan redist(obs_, "redistribute");
    for (std::size_t m = 1; m < h.rack.size(); ++m) {
      transport_.Post(h.rack[m], redist_tag,
                      std::as_bytes(std::span<const double>(out)));
      st.redist_elements += out.size();
      ++st.redist_messages;
    }
  } else {
    StageSpan redist(obs_, "redistribute");
    std::vector<std::byte> buf;
    transport_.Recv(h.my_leader, redist_tag, buf);
    out.resize(buf.size() / sizeof(double));
    std::memcpy(out.data(), buf.data(), buf.size());
  }
  st.rounds = st.rack_rounds + st.root_rounds;
  if (obs_ != nullptr) {
    FinishCollective(obs_, "wire_multilevel",
                     std::string(AlgName(kind)) + "_ml", obs_begin);
  }
}

void WireCollectives::MultiLevelSparse(
    AllreduceKind kind, std::span<const Transport::Rank> members,
    std::uint32_t per_rack, const linalg::SparseVector& input,
    linalg::SparseVector& out, WireStats& st) {
  st.Reset();
  Hierarchy h(transport_, members, per_rack);
  const Tag rack_tag = NextBaseTag();
  const Tag root_tag = NextBaseTag();
  const Tag redist_tag = NextBaseTag();
  const double obs_begin = obs_ != nullptr ? obs_->Now() : 0.0;
  if (obs_ != nullptr) obs_->iteration = epoch_;

  Scratch sc;
  WireStats stage;
  linalg::SparseVector rack_sum;
  {
    Wire w(transport_, h.rack, obs_);
    RunSparse(kind, w, rack_tag, pricing_, input, rack_sum, sc, stage);
  }
  FoldStageTraffic(st, stage);
  st.rack_rounds = stage.rounds;

  if (h.is_leader) {
    stage.Reset();
    Wire w(transport_, h.leaders, obs_);
    RunSparse(kind, w, root_tag, pricing_, rack_sum, out, sc, stage);
    FoldStageTraffic(st, stage);
    st.root_rounds = stage.rounds;
    StageSpan redist(obs_, "redistribute");
    Wire rack_wire(transport_, h.rack);
    for (std::size_t m = 1; m < h.rack.size(); ++m) {
      rack_wire.PostSparse(static_cast<GroupRank>(m), redist_tag, out,
                           sc.bytes);
      st.redist_elements += out.nnz();
      ++st.redist_messages;
    }
  } else {
    StageSpan redist(obs_, "redistribute");
    Wire rack_wire(transport_, h.rack);
    rack_wire.RecvSparse(0, redist_tag, input.dim(), out, sc.bytes, sc.idx,
                         sc.val);
  }
  st.rounds = st.rack_rounds + st.root_rounds;
  if (obs_ != nullptr) {
    FinishCollective(obs_, "wire_multilevel",
                     std::string(AlgName(kind)) + "_ml", obs_begin);
  }
}

}  // namespace psra::comm
