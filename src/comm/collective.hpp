// Allreduce collective interface and the shared timing model.
//
// Execution model (DESIGN.md §2): collectives run over the virtual-time
// simulator, so an algorithm receives *all* members' input vectors plus the
// virtual time at which each member entered the collective, and returns each
// member's output plus the virtual time at which each member finished. Costs
// follow the paper's Section 4.2 accounting:
//
//   * transfers are SENDER-SERIALIZED: a worker's outgoing messages leave its
//     NIC one after another, each costing latency + elements * theta(link);
//     receives are not a bottleneck (the paper's bounds, eq. 11-16, charge
//     only send-side element time);
//   * sparse elements cost theta_s = (value+index)/B, dense elements
//     value/B, with B the bus or network bandwidth of the link crossed;
//   * a step that needs data from another worker cannot begin before that
//     data has arrived (pipeline/synchronization delays emerge naturally).
//
// All algorithms reduce in ascending group-rank order so dense and sparse
// variants of every algorithm produce bitwise-identical sums.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "comm/group.hpp"
#include "comm/pricing.hpp"
#include "linalg/dense_ops.hpp"
#include "linalg/sparse_vector.hpp"

namespace psra::simnet {
class FaultPlan;
}

namespace psra::comm {

/// Cost accounting for one collective invocation.
struct CommStats {
  /// Virtual time at which each member finished (indexed by group rank).
  std::vector<simnet::VirtualTime> finish_times;
  /// Completion of the scatter-reduce stage (max across members); 0 for
  /// algorithms without that stage.
  simnet::VirtualTime scatter_reduce_done = 0.0;
  /// Completion of the whole collective (max finish time).
  simnet::VirtualTime all_done = 0.0;
  /// Total elements serialized onto links (sparse nnz or dense values).
  std::size_t elements_sent = 0;
  /// Total messages.
  std::size_t messages_sent = 0;
  /// Total bytes serialized onto links: elements priced at the cost model's
  /// per-element width (value bytes, plus index bytes for sparse payloads).
  /// This is the observable behind the paper's eq. 11-16 traffic bounds.
  std::size_t bytes_sent = 0;
  /// Serialized communication rounds (hops) the algorithm performed: 2 for
  /// PSR/naive (scatter-reduce + allgather / gather + bcast), 2(N-1) for the
  /// ring, O(log N) exchanges for rhd/tree.
  std::size_t rounds = 0;
  /// Sum over members of busy send time (the paper's "communication cost").
  simnet::VirtualTime total_send_time = 0.0;

  /// Max finish minus max start: the wall-clock the collective added.
  simnet::VirtualTime Span(std::span<const simnet::VirtualTime> starts) const;

  /// Zeroes every field and sizes finish_times to `n` members, reusing its
  /// storage. Called by the in-place Reduce* entry points.
  void Reset(std::size_t n);

  /// Books one posted message carrying `elems` elements priced at
  /// `per_elem_bytes` (see ElemPricing). Every simulator timing loop counts
  /// traffic through this call — the same formula the wire executor uses —
  /// so counters are comparable across backends.
  void CountSend(std::size_t elems, std::size_t per_elem_bytes) {
    detail::CountSend(elems, per_elem_bytes, elements_sent, messages_sent,
                      bytes_sent);
  }

  bool operator==(const CommStats& other) const = default;
};

/// Reusable buffers for the in-place Reduce* entry points. Callers keep one
/// instance per call site and pass it to every invocation; each buffer grows
/// to its working size on first use and is recycled afterwards, so
/// steady-state collectives perform no heap allocation. The fields are
/// algorithm-private scratch — callers must not read them.
struct AllreduceScratch {
  // Virtual-time and size bookkeeping.
  std::vector<simnet::VirtualTime> times_a;
  std::vector<simnet::VirtualTime> times_b;
  std::vector<simnet::VirtualTime> times_c;
  std::vector<simnet::VirtualTime> times_d;
  std::vector<std::size_t> sizes;
  // Sparse payloads: per-block partials plus ping-pong accumulators.
  std::vector<linalg::SparseVector> sparse_blocks;
  linalg::SparseVector sparse_tmp;
  linalg::SparseVector sparse_tmp2;
  // Ring block state: blocks[member][block] plus per-round in-flight copies.
  std::vector<std::vector<linalg::DenseVector>> dense_ring;
  std::vector<linalg::DenseVector> dense_in_flight;
  std::vector<std::vector<linalg::SparseVector>> sparse_ring;
  std::vector<linalg::SparseVector> sparse_in_flight;
  // Per-member working vectors (rhd/tree).
  std::vector<linalg::DenseVector> dense_values;
  std::vector<linalg::SparseVector> sparse_values;
};

/// Fault-injection context for the fault-tolerant Reduce* entry points.
/// Callers keep one instance per run (like AllreduceScratch) and bump
/// `iteration` each round; `channel` auto-increments per invocation so two
/// collectives in the same iteration draw independent fault coins.
///
/// Timeout/retry semantics (DESIGN.md "Fault model"): when the plan drops a
/// member's transfer, the whole collective stalls for retry_timeout_s and
/// retries; after max_retries the still-failing members are EXCLUDED and the
/// collective completes over the surviving member set — the sum then covers
/// survivors only, and `excluded` reports who was left out so the engine can
/// skip their consensus update for the round.
struct FaultContext {
  const simnet::FaultPlan* plan = nullptr;  // null or empty plan: no faults
  std::uint64_t iteration = 0;              // 1-based engine iteration
  std::uint64_t channel = 0;                // next collective id (auto-bumped)

  // Cumulative accounting across invocations.
  std::size_t dropped_messages = 0;
  std::size_t retries = 0;
  std::size_t delayed_messages = 0;

  /// Group ranks excluded by the LAST invocation (cleared on each call).
  std::vector<GroupRank> excluded;

  // Scratch recycled across invocations (private to the implementation).
  std::vector<simnet::VirtualTime> adj_starts;
  std::vector<simnet::Rank> survivor_ranks;
  std::vector<simnet::VirtualTime> survivor_starts;
  std::vector<linalg::DenseVector> survivor_dense;
  std::vector<linalg::SparseVector> survivor_sparse;
  CommStats sub_stats;
};

struct DenseAllreduceResult {
  /// outputs[g] = sum over members of inputs (same for all g).
  std::vector<linalg::DenseVector> outputs;
  CommStats stats;
};

struct SparseAllreduceResult {
  std::vector<linalg::SparseVector> outputs;
  CommStats stats;
};

/// Strategy interface: Ring-Allreduce, PSR-Allreduce, naive gather+bcast.
class AllreduceAlgorithm {
 public:
  virtual ~AllreduceAlgorithm() = default;

  virtual std::string Name() const = 0;

  /// inputs.size() == starts.size() == group.size(); all inputs share a dim.
  virtual DenseAllreduceResult RunDense(
      const GroupComm& group, std::span<const linalg::DenseVector> inputs,
      std::span<const simnet::VirtualTime> starts) const = 0;

  virtual SparseAllreduceResult RunSparse(
      const GroupComm& group, std::span<const linalg::SparseVector> inputs,
      std::span<const simnet::VirtualTime> starts) const = 0;

  /// In-place reduction: writes the group sum (== RunDense().outputs[0],
  /// bitwise) into `sum` and the cost accounting into `stats`, drawing all
  /// temporaries from `scratch`. The base implementation delegates to
  /// RunDense; algorithms override it to run allocation-free in steady state.
  virtual void ReduceDense(const GroupComm& group,
                           std::span<const linalg::DenseVector> inputs,
                           std::span<const simnet::VirtualTime> starts,
                           AllreduceScratch& scratch, linalg::DenseVector& sum,
                           CommStats& stats) const;

  /// Sparse counterpart; `sum` matches RunSparse().outputs[0] bitwise.
  virtual void ReduceSparse(const GroupComm& group,
                            std::span<const linalg::SparseVector> inputs,
                            std::span<const simnet::VirtualTime> starts,
                            AllreduceScratch& scratch,
                            linalg::SparseVector& sum, CommStats& stats) const;

  /// Fault-tolerant in-place reduction: applies `fc.plan`'s message delays,
  /// then runs the timeout + bounded-retry protocol described on
  /// FaultContext. With a null/empty plan this is EXACTLY ReduceDense —
  /// bitwise-identical results and no extra allocation.
  void ReduceDenseFaulty(const GroupComm& group,
                         std::span<const linalg::DenseVector> inputs,
                         std::span<const simnet::VirtualTime> starts,
                         FaultContext& fc, AllreduceScratch& scratch,
                         linalg::DenseVector& sum, CommStats& stats) const;

  /// Sparse counterpart of ReduceDenseFaulty.
  void ReduceSparseFaulty(const GroupComm& group,
                          std::span<const linalg::SparseVector> inputs,
                          std::span<const simnet::VirtualTime> starts,
                          FaultContext& fc, AllreduceScratch& scratch,
                          linalg::SparseVector& sum, CommStats& stats) const;
};

enum class AllreduceKind { kNaive, kRing, kPsr, kRhd, kTree };

/// Factory; names: "naive", "ring", "psr", "rhd", "tree".
std::unique_ptr<AllreduceAlgorithm> MakeAllreduce(AllreduceKind kind);
std::unique_ptr<AllreduceAlgorithm> MakeAllreduce(const std::string& name);

namespace detail {
/// Validates the common preconditions and returns the shared dimension.
std::uint64_t CheckDenseInputs(const GroupComm& group,
                               std::span<const linalg::DenseVector> inputs,
                               std::span<const simnet::VirtualTime> starts);
std::uint64_t CheckSparseInputs(const GroupComm& group,
                                std::span<const linalg::SparseVector> inputs,
                                std::span<const simnet::VirtualTime> starts);
}  // namespace detail

}  // namespace psra::comm
