#include "comm/hierarchical.hpp"

#include <algorithm>

#include "support/status.hpp"

namespace psra::comm {

namespace {

/// Folds one stage collective's traffic into the aggregate (finish times are
/// composed by the caller, not merged).
void MergeTraffic(CommStats& agg, const CommStats& stage) {
  agg.elements_sent += stage.elements_sent;
  agg.messages_sent += stage.messages_sent;
  agg.bytes_sent += stage.bytes_sent;
  agg.rounds += stage.rounds;
  agg.total_send_time += stage.total_send_time;
}

}  // namespace

MultiLevelAllreduce::MultiLevelAllreduce(const simnet::Topology* topo,
                                         const simnet::CostModel* cost,
                                         std::span<const simnet::Rank> members)
{
  PSRA_REQUIRE(topo != nullptr && cost != nullptr,
               "multi-level allreduce needs a topology and a cost model");
  PSRA_REQUIRE(members.size() == topo->num_nodes(),
               "multi-level allreduce takes one member per node");
  const std::uint32_t racks = topo->num_racks();
  per_rack_ = topo->nodes_per_rack();
  rack_comms_.reserve(racks);
  rack_leaders_.reserve(racks);
  for (std::uint32_t r = 0; r < racks; ++r) {
    std::vector<simnet::Rank> rack_members;
    rack_members.reserve(per_rack_);
    for (std::uint32_t m = 0; m < per_rack_; ++m) {
      const simnet::Rank rank = members[r * per_rack_ + m];
      PSRA_REQUIRE(topo->RackOfRank(rank) == r,
                   "members must be listed in ascending node order");
      rack_members.push_back(rank);
    }
    rack_leaders_.push_back(rack_members.front());
    rack_comms_.emplace_back(topo, cost, std::move(rack_members));
  }
  root_comm_.emplace(topo, cost, std::vector<simnet::Rank>(
                                     rack_leaders_.begin(),
                                     rack_leaders_.end()));
}

void MultiLevelAllreduce::CheckCall(std::size_t inputs,
                                    std::size_t starts) const {
  const std::size_t n =
      static_cast<std::size_t>(per_rack_) * rack_comms_.size();
  PSRA_REQUIRE(inputs == n && starts == n,
               "multi-level allreduce needs one input and start per member");
}

void MultiLevelAllreduce::Redistribute(std::size_t num_elements,
                                       const CommStats& root_stats,
                                       CommStats& stats) {
  redist_elements_ = 0;
  redist_messages_ = 0;
  for (std::size_t r = 0; r < rack_comms_.size(); ++r) {
    BroadcastFromLeader(rack_comms_[r], 0, num_elements,
                        root_stats.finish_times[r], bcast_);
    redist_elements_ += bcast_.elements_sent;
    redist_messages_ += bcast_.messages_sent;
    const std::size_t base = r * per_rack_;
    // The rack leader finishes when its serialized sends complete; a peer
    // when the broadcast reaches it (it was already done with stage 1).
    stats.finish_times[base] = bcast_.finish_times[0];
    for (std::size_t m = 1; m < per_rack_; ++m) {
      stats.finish_times[base + m] =
          std::max(stats.finish_times[base + m], bcast_.finish_times[m]);
    }
  }
  stats.all_done = 0.0;
  for (const simnet::VirtualTime t : stats.finish_times) {
    stats.all_done = std::max(stats.all_done, t);
  }
}

void MultiLevelAllreduce::ReduceDense(const AllreduceAlgorithm& alg,
                                      std::span<const linalg::DenseVector> inputs,
                                      std::span<const simnet::VirtualTime> starts,
                                      AllreduceScratch& scratch,
                                      linalg::DenseVector& sum,
                                      CommStats& stats) {
  CheckCall(inputs.size(), starts.size());
  const std::size_t racks = rack_comms_.size();
  stats.Reset(inputs.size());
  rack_dense_.resize(racks);
  root_starts_.resize(racks);
  for (std::size_t r = 0; r < racks; ++r) {
    const std::size_t base = r * per_rack_;
    alg.ReduceDense(rack_comms_[r], inputs.subspan(base, per_rack_),
                    starts.subspan(base, per_rack_), scratch, rack_dense_[r],
                    stage_stats_);
    for (std::size_t m = 0; m < per_rack_; ++m) {
      stats.finish_times[base + m] = stage_stats_.finish_times[m];
    }
    root_starts_[r] = stage_stats_.finish_times[0];
    MergeTraffic(stats, stage_stats_);
  }
  alg.ReduceDense(*root_comm_, rack_dense_, root_starts_, scratch, sum,
                  stage_stats_);
  MergeTraffic(stats, stage_stats_);
  Redistribute(sum.size(), stage_stats_, stats);
}

void MultiLevelAllreduce::ReduceSparse(
    const AllreduceAlgorithm& alg,
    std::span<const linalg::SparseVector> inputs,
    std::span<const simnet::VirtualTime> starts, AllreduceScratch& scratch,
    linalg::SparseVector& sum, CommStats& stats) {
  CheckCall(inputs.size(), starts.size());
  const std::size_t racks = rack_comms_.size();
  stats.Reset(inputs.size());
  rack_sparse_.resize(racks);
  root_starts_.resize(racks);
  for (std::size_t r = 0; r < racks; ++r) {
    const std::size_t base = r * per_rack_;
    alg.ReduceSparse(rack_comms_[r], inputs.subspan(base, per_rack_),
                     starts.subspan(base, per_rack_), scratch, rack_sparse_[r],
                     stage_stats_);
    for (std::size_t m = 0; m < per_rack_; ++m) {
      stats.finish_times[base + m] = stage_stats_.finish_times[m];
    }
    root_starts_[r] = stage_stats_.finish_times[0];
    MergeTraffic(stats, stage_stats_);
  }
  alg.ReduceSparse(*root_comm_, rack_sparse_, root_starts_, scratch, sum,
                   stage_stats_);
  MergeTraffic(stats, stage_stats_);
  Redistribute(sum.nnz(), stage_stats_, stats);
}

}  // namespace psra::comm
