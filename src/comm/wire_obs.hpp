// Observability collection plane: rides the transport itself.
//
// At the end of a wire run every rank calls CollectWireObs with its WireObs
// handle. The plane fences, flushes backend queue metrics, detaches the
// handle (its own traffic must not self-instrument), then:
//
//   1. Clock sync: rank 0 runs one NTP-style exchange with each peer r —
//      rank 0 stamps t0 and posts a ping; r stamps t1 on receipt and t2 on
//      reply; rank 0 stamps t3 on receipt and estimates r's clock offset
//      offset_r = ((t1 - t0) + (t2 - t3)) / 2, then posts it back so r can
//      record it. WireObs clocks are per-process steady-clock epochs, so the
//      offset is dominated by process start skew; half the round-trip time
//      bounds the estimate's error.
//   2. Payload shipping: every rank r > 0 serializes its handle
//      (SerializeWireObs) and posts it to rank 0; rank 0 parses each payload
//      — rejecting malformed or truncated ones with InvalidArgument — and
//      aggregates all registries via MetricsRegistry::MergeFrom.
//
// Tags live in [Transport::kMaxCollectiveTag, Transport::kMaxUserTag), a
// range reserved for this plane: collectives derive their tags below it and
// harness side channels must stay below it too.
#pragma once

#include <vector>

#include "comm/transport.hpp"
#include "obs/wire.hpp"

namespace psra::comm {

/// Collection-plane tags (reserved range; see header comment).
inline constexpr Transport::Tag kObsClockTag = Transport::kMaxCollectiveTag;
inline constexpr Transport::Tag kObsOffsetTag =
    Transport::kMaxCollectiveTag + 1;
inline constexpr Transport::Tag kObsPayloadTag =
    Transport::kMaxCollectiveTag + 2;

/// Rank 0's merged view of one wire run.
struct WireObsBundle {
  /// Every rank's registry folded together: counters sum, histograms merge,
  /// per-rank gauges coexist via their rank-qualified keys.
  obs::MetricsRegistry metrics;
  /// Per-rank payloads in rank order (rank 0's own state included), ready
  /// for obs::WriteMergedWireTrace.
  std::vector<obs::RankObsPayload> ranks;
};

/// Collective: every rank of `t` must call with its own handle. Publishes
/// the endpoint's transport.* counters into `obs` on every rank, estimates
/// and records clock offsets (obs.clock_offset_s + the
/// wire.rank<r>.clock_offset_s gauge), and ships all state to rank 0.
/// Detaches `obs` from the transport as a side effect. Returns true on rank
/// 0 with `out` filled (out may be null elsewhere); false on other ranks.
bool CollectWireObs(Transport& t, obs::WireObs& obs, WireObsBundle* out);

}  // namespace psra::comm
