// Intra-node primitives used by the WLG framework (paper Section 4.3):
// workers on one physical node reduce their w_i to the elected Leader over
// the bus, and the Leader later broadcasts the updated global W back.
// Both are blocking (BSP) operations.
#pragma once

#include <span>
#include <vector>

#include "comm/group.hpp"
#include "linalg/dense_ops.hpp"

namespace psra::comm {

struct ReduceResult {
  /// Sum of all members' inputs, available at the leader.
  linalg::DenseVector value;
  /// When the leader has the complete sum.
  simnet::VirtualTime leader_ready = 0.0;
  /// When each member finished its part (send completion), by group rank.
  std::vector<simnet::VirtualTime> finish_times;
  std::size_t elements_sent = 0;
  std::size_t messages_sent = 0;
  simnet::VirtualTime total_send_time = 0.0;
};

/// Members send their vectors to `leader` (parallel sends, each priced on its
/// own link); the leader reduces in ascending group-rank order.
ReduceResult ReduceToLeader(const GroupComm& group, GroupRank leader,
                            std::span<const linalg::DenseVector> inputs,
                            std::span<const simnet::VirtualTime> starts);

/// In-place overload: fills `out`, reusing its buffers across calls.
void ReduceToLeader(const GroupComm& group, GroupRank leader,
                    std::span<const linalg::DenseVector> inputs,
                    std::span<const simnet::VirtualTime> starts,
                    ReduceResult& out);

struct BroadcastResult {
  /// When each member has the value (leader: when it finished sending).
  std::vector<simnet::VirtualTime> finish_times;
  std::size_t elements_sent = 0;
  std::size_t messages_sent = 0;
  simnet::VirtualTime total_send_time = 0.0;
};

/// Leader serializes one message per member (ascending group rank).
BroadcastResult BroadcastFromLeader(const GroupComm& group, GroupRank leader,
                                    std::size_t num_elements,
                                    simnet::VirtualTime leader_start);

/// In-place overload: fills `out`, reusing its buffers across calls.
void BroadcastFromLeader(const GroupComm& group, GroupRank leader,
                         std::size_t num_elements,
                         simnet::VirtualTime leader_start,
                         BroadcastResult& out);

}  // namespace psra::comm
