#include <algorithm>

#include "comm/allreduce_impl.hpp"
#include "support/status.hpp"

namespace psra::comm {

namespace {

// Shared PSR timing skeleton (paper Section 4.2, Figure 2).
//
// Scatter-Reduce: member i serializes one direct message per foreign block
// to that block's owner (ascending owner order). Owner j's block is fully
// reduced once every contribution has arrived.
// Allgather: owner j serializes its reduced block to every other member
// (ascending member order).
//
// `contrib_size(i, j)` = elements member i contributes to block j;
// `reduced_size(j)`    = elements of the fully reduced block j;
// both queried lazily so dense/sparse share the control flow. When
// `skip_empty` (sparse), zero-element messages are not sent at all — this
// realizes the paper's best case T_psr-sr = 0.
template <typename ContribSize, typename ReducedSize>
CommStats PsrTiming(const GroupComm& group,
                    std::span<const simnet::VirtualTime> starts,
                    ContribSize contrib_size, ReducedSize reduced_size,
                    bool sparse, bool skip_empty) {
  const auto& cm = group.cost_model();
  const GroupRank n = group.size();
  CommStats st;
  st.finish_times.assign(n, 0.0);

  auto transfer = [&](GroupRank a, GroupRank b, std::size_t elems) {
    const simnet::Link link = group.LinkBetween(a, b);
    return sparse ? cm.SparseTransferTime(link, elems)
                  : cm.DenseTransferTime(link, elems);
  };

  if (n == 1) {
    st.finish_times[0] = starts[0];
    st.all_done = starts[0];
    st.scatter_reduce_done = starts[0];
    return st;
  }

  // --- Scatter-Reduce ---------------------------------------------------
  // ready[j]: when owner j's block is fully reduced.
  std::vector<simnet::VirtualTime> ready(n);
  std::vector<simnet::VirtualTime> sr_send_done(n);  // sender-side busy-until
  for (GroupRank j = 0; j < n; ++j) ready[j] = starts[j];

  for (GroupRank i = 0; i < n; ++i) {
    simnet::VirtualTime clock = starts[i];
    for (GroupRank j = 0; j < n; ++j) {
      if (j == i) continue;
      const std::size_t elems = contrib_size(i, j);
      if (skip_empty && elems == 0) continue;
      const simnet::VirtualTime cost = transfer(i, j, elems);
      clock += cost;
      ready[j] = std::max(ready[j], clock);
      st.elements_sent += elems;
      ++st.messages_sent;
      st.total_send_time += cost;
    }
    sr_send_done[i] = clock;
  }
  st.scatter_reduce_done = *std::max_element(ready.begin(), ready.end());

  // --- Allgather ----------------------------------------------------------
  // arrival[m]: latest block arrival at member m.
  std::vector<simnet::VirtualTime> arrival(n);
  for (GroupRank m = 0; m < n; ++m) {
    arrival[m] = std::max(ready[m], sr_send_done[m]);
  }
  std::vector<simnet::VirtualTime> ag_send_done(n);
  for (GroupRank j = 0; j < n; ++j) {
    const std::size_t elems = reduced_size(j);
    simnet::VirtualTime clock = std::max(ready[j], sr_send_done[j]);
    for (GroupRank m = 0; m < n; ++m) {
      if (m == j) continue;
      if (skip_empty && elems == 0) continue;
      const simnet::VirtualTime cost = transfer(j, m, elems);
      clock += cost;
      arrival[m] = std::max(arrival[m], clock);
      st.elements_sent += elems;
      ++st.messages_sent;
      st.total_send_time += cost;
    }
    ag_send_done[j] = clock;
  }

  for (GroupRank m = 0; m < n; ++m) {
    st.finish_times[m] = std::max(arrival[m], ag_send_done[m]);
  }
  st.all_done = *std::max_element(st.finish_times.begin(),
                                  st.finish_times.end());
  return st;
}

}  // namespace

DenseAllreduceResult PsrAllreduce::RunDense(
    const GroupComm& group, std::span<const linalg::DenseVector> inputs,
    std::span<const simnet::VirtualTime> starts) const {
  const std::uint64_t dim = detail::CheckDenseInputs(group, inputs, starts);
  const GroupRank n = group.size();

  linalg::DenseVector sum(static_cast<std::size_t>(dim), 0.0);
  for (GroupRank g = 0; g < n; ++g) linalg::Axpy(1.0, inputs[g], sum);

  auto block_len = [&](GroupRank j) {
    const auto [lo, hi] = group.BlockRange(dim, j);
    return static_cast<std::size_t>(hi - lo);
  };

  DenseAllreduceResult out;
  out.stats = PsrTiming(
      group, starts,
      [&](GroupRank /*i*/, GroupRank j) { return block_len(j); },
      [&](GroupRank j) { return block_len(j); },
      /*sparse=*/false, /*skip_empty=*/false);
  out.outputs.assign(n, sum);
  return out;
}

SparseAllreduceResult PsrAllreduce::RunSparse(
    const GroupComm& group, std::span<const linalg::SparseVector> inputs,
    std::span<const simnet::VirtualTime> starts) const {
  const std::uint64_t dim = detail::CheckSparseInputs(group, inputs, starts);
  const GroupRank n = group.size();

  // Reduce each block in ascending contributor order.
  std::vector<linalg::SparseVector> reduced(n);
  for (GroupRank j = 0; j < n; ++j) {
    const auto [lo, hi] = group.BlockRange(dim, j);
    linalg::SparseVector acc = inputs[0].Slice(lo, hi);
    for (GroupRank i = 1; i < n; ++i) {
      acc = linalg::SparseVector::Sum(acc, inputs[i].Slice(lo, hi));
    }
    reduced[j] = std::move(acc);
  }
  const linalg::SparseVector full =
      linalg::SparseVector::ConcatDisjoint(reduced);

  SparseAllreduceResult out;
  out.stats = PsrTiming(
      group, starts,
      [&](GroupRank i, GroupRank j) {
        const auto [lo, hi] = group.BlockRange(dim, j);
        return inputs[i].CountInRange(lo, hi);
      },
      [&](GroupRank j) { return reduced[j].nnz(); },
      /*sparse=*/true, /*skip_empty=*/true);
  out.outputs.assign(n, full);
  return out;
}

}  // namespace psra::comm
