#include <algorithm>

#include "comm/allreduce_impl.hpp"
#include "support/status.hpp"

namespace psra::comm {

namespace {

// Shared PSR timing skeleton (paper Section 4.2, Figure 2).
//
// Scatter-Reduce: member i serializes one direct message per foreign block
// to that block's owner (ascending owner order). Owner j's block is fully
// reduced once every contribution has arrived.
// Allgather: owner j serializes its reduced block to every other member
// (ascending member order).
//
// `contrib_size(i, j)` = elements member i contributes to block j;
// `reduced_size(j)`    = elements of the fully reduced block j;
// both queried lazily so dense/sparse share the control flow. When
// `skip_empty` (sparse), zero-element messages are not sent at all — this
// realizes the paper's best case T_psr-sr = 0. All bookkeeping vectors live
// in `scratch` so steady-state calls allocate nothing.
template <typename ContribSize, typename ReducedSize>
void PsrTiming(const GroupComm& group,
               std::span<const simnet::VirtualTime> starts,
               ContribSize contrib_size, ReducedSize reduced_size, bool sparse,
               bool skip_empty, AllreduceScratch& scratch, CommStats& st) {
  const auto& cm = group.cost_model();
  const GroupRank n = group.size();
  st.Reset(n);
  const std::size_t elem_bytes = group.pricing().PerElement(sparse);

  auto transfer = [&](GroupRank a, GroupRank b, std::size_t elems) {
    const simnet::Link link = group.LinkBetween(a, b);
    return sparse ? cm.SparseTransferTime(link, elems)
                  : cm.DenseTransferTime(link, elems);
  };

  if (n == 1) {
    st.finish_times[0] = starts[0];
    st.all_done = starts[0];
    st.scatter_reduce_done = starts[0];
    return;
  }

  // --- Scatter-Reduce ---------------------------------------------------
  // ready[j]: when owner j's block is fully reduced.
  auto& ready = scratch.times_a;
  auto& sr_send_done = scratch.times_b;  // sender-side busy-until
  ready.resize(n);
  sr_send_done.assign(n, 0.0);
  for (GroupRank j = 0; j < n; ++j) ready[j] = starts[j];

  for (GroupRank i = 0; i < n; ++i) {
    simnet::VirtualTime clock = starts[i];
    for (GroupRank j = 0; j < n; ++j) {
      if (j == i) continue;
      const std::size_t elems = contrib_size(i, j);
      if (skip_empty && elems == 0) continue;
      const simnet::VirtualTime cost = transfer(i, j, elems);
      clock += cost;
      ready[j] = std::max(ready[j], clock);
      st.CountSend(elems, elem_bytes);
      st.total_send_time += cost;
    }
    sr_send_done[i] = clock;
  }
  ++st.rounds;  // scatter-reduce phase
  st.scatter_reduce_done = *std::max_element(ready.begin(), ready.end());

  // --- Allgather ----------------------------------------------------------
  // arrival[m]: latest block arrival at member m.
  auto& arrival = scratch.times_c;
  arrival.resize(n);
  for (GroupRank m = 0; m < n; ++m) {
    arrival[m] = std::max(ready[m], sr_send_done[m]);
  }
  auto& ag_send_done = scratch.times_d;
  ag_send_done.assign(n, 0.0);
  for (GroupRank j = 0; j < n; ++j) {
    const std::size_t elems = reduced_size(j);
    simnet::VirtualTime clock = std::max(ready[j], sr_send_done[j]);
    for (GroupRank m = 0; m < n; ++m) {
      if (m == j) continue;
      if (skip_empty && elems == 0) continue;
      const simnet::VirtualTime cost = transfer(j, m, elems);
      clock += cost;
      arrival[m] = std::max(arrival[m], clock);
      st.CountSend(elems, elem_bytes);
      st.total_send_time += cost;
    }
    ag_send_done[j] = clock;
  }
  ++st.rounds;  // allgather phase

  for (GroupRank m = 0; m < n; ++m) {
    st.finish_times[m] = std::max(arrival[m], ag_send_done[m]);
  }
  st.all_done = *std::max_element(st.finish_times.begin(),
                                  st.finish_times.end());
}

}  // namespace

void PsrAllreduce::ReduceDense(const GroupComm& group,
                               std::span<const linalg::DenseVector> inputs,
                               std::span<const simnet::VirtualTime> starts,
                               AllreduceScratch& scratch,
                               linalg::DenseVector& sum,
                               CommStats& stats) const {
  const std::uint64_t dim = detail::CheckDenseInputs(group, inputs, starts);
  const GroupRank n = group.size();

  sum.assign(static_cast<std::size_t>(dim), 0.0);
  for (GroupRank g = 0; g < n; ++g) linalg::Axpy(1.0, inputs[g], sum);

  auto block_len = [&](GroupRank j) {
    const auto [lo, hi] = group.BlockRange(dim, j);
    return static_cast<std::size_t>(hi - lo);
  };

  PsrTiming(
      group, starts,
      [&](GroupRank /*i*/, GroupRank j) { return block_len(j); },
      [&](GroupRank j) { return block_len(j); },
      /*sparse=*/false, /*skip_empty=*/false, scratch, stats);
}

void PsrAllreduce::ReduceSparse(const GroupComm& group,
                                std::span<const linalg::SparseVector> inputs,
                                std::span<const simnet::VirtualTime> starts,
                                AllreduceScratch& scratch,
                                linalg::SparseVector& sum,
                                CommStats& stats) const {
  const std::uint64_t dim = detail::CheckSparseInputs(group, inputs, starts);
  const GroupRank n = group.size();

  // Reduce each block in ascending contributor order. The ping-pong through
  // sparse_tmp/sparse_tmp2 keeps every merge in recycled storage.
  auto& reduced = scratch.sparse_blocks;
  reduced.resize(n);
  for (GroupRank j = 0; j < n; ++j) {
    const auto [lo, hi] = group.BlockRange(dim, j);
    inputs[0].SliceInto(lo, hi, reduced[j]);
    for (GroupRank i = 1; i < n; ++i) {
      inputs[i].SliceInto(lo, hi, scratch.sparse_tmp);
      linalg::SparseVector::SumInto(reduced[j], scratch.sparse_tmp,
                                    scratch.sparse_tmp2);
      std::swap(reduced[j], scratch.sparse_tmp2);
    }
  }
  linalg::SparseVector::ConcatDisjointInto(reduced, sum);

  PsrTiming(
      group, starts,
      [&](GroupRank i, GroupRank j) {
        const auto [lo, hi] = group.BlockRange(dim, j);
        return inputs[i].CountInRange(lo, hi);
      },
      [&](GroupRank j) { return reduced[j].nnz(); },
      /*sparse=*/true, /*skip_empty=*/true, scratch, stats);
}

DenseAllreduceResult PsrAllreduce::RunDense(
    const GroupComm& group, std::span<const linalg::DenseVector> inputs,
    std::span<const simnet::VirtualTime> starts) const {
  AllreduceScratch scratch;
  DenseAllreduceResult out;
  linalg::DenseVector sum;
  ReduceDense(group, inputs, starts, scratch, sum, out.stats);
  out.outputs.assign(group.size(), sum);
  return out;
}

SparseAllreduceResult PsrAllreduce::RunSparse(
    const GroupComm& group, std::span<const linalg::SparseVector> inputs,
    std::span<const simnet::VirtualTime> starts) const {
  AllreduceScratch scratch;
  SparseAllreduceResult out;
  linalg::SparseVector sum;
  ReduceSparse(group, inputs, starts, scratch, sum, out.stats);
  out.outputs.assign(group.size(), sum);
  return out;
}

}  // namespace psra::comm
