#include "comm/intranode.hpp"

#include <algorithm>

#include "support/status.hpp"

namespace psra::comm {

void ReduceToLeader(const GroupComm& group, GroupRank leader,
                    std::span<const linalg::DenseVector> inputs,
                    std::span<const simnet::VirtualTime> starts,
                    ReduceResult& out) {
  PSRA_REQUIRE(leader < group.size(), "leader rank out of range");
  PSRA_REQUIRE(inputs.size() == group.size(), "one input per member required");
  PSRA_REQUIRE(starts.size() == group.size(), "one start per member required");
  const std::size_t dim = inputs[0].size();
  for (const auto& v : inputs) {
    PSRA_REQUIRE(v.size() == dim, "input dimension mismatch");
  }

  const auto& cm = group.cost_model();
  out.finish_times.assign(group.size(), 0.0);
  out.leader_ready = 0.0;
  out.elements_sent = 0;
  out.messages_sent = 0;
  out.total_send_time = 0.0;

  out.value.assign(dim, 0.0);
  for (GroupRank g = 0; g < group.size(); ++g) {
    linalg::Axpy(1.0, inputs[g], out.value);
  }

  out.leader_ready = starts[leader];
  out.finish_times[leader] = starts[leader];
  for (GroupRank g = 0; g < group.size(); ++g) {
    if (g == leader) continue;
    const simnet::VirtualTime cost =
        cm.DenseTransferTime(group.LinkBetween(g, leader), dim);
    const simnet::VirtualTime done = starts[g] + cost;
    out.finish_times[g] = done;
    out.leader_ready = std::max(out.leader_ready, done);
    out.elements_sent += dim;
    ++out.messages_sent;
    out.total_send_time += cost;
  }
}

ReduceResult ReduceToLeader(const GroupComm& group, GroupRank leader,
                            std::span<const linalg::DenseVector> inputs,
                            std::span<const simnet::VirtualTime> starts) {
  ReduceResult out;
  ReduceToLeader(group, leader, inputs, starts, out);
  return out;
}

void BroadcastFromLeader(const GroupComm& group, GroupRank leader,
                         std::size_t num_elements,
                         simnet::VirtualTime leader_start,
                         BroadcastResult& out) {
  PSRA_REQUIRE(leader < group.size(), "leader rank out of range");
  const auto& cm = group.cost_model();
  out.finish_times.assign(group.size(), leader_start);
  out.elements_sent = 0;
  out.messages_sent = 0;
  out.total_send_time = 0.0;

  simnet::VirtualTime clock = leader_start;
  for (GroupRank g = 0; g < group.size(); ++g) {
    if (g == leader) continue;
    const simnet::VirtualTime cost =
        cm.DenseTransferTime(group.LinkBetween(leader, g), num_elements);
    clock += cost;
    out.finish_times[g] = clock;
    out.elements_sent += num_elements;
    ++out.messages_sent;
    out.total_send_time += cost;
  }
  out.finish_times[leader] = clock;
}

BroadcastResult BroadcastFromLeader(const GroupComm& group, GroupRank leader,
                                    std::size_t num_elements,
                                    simnet::VirtualTime leader_start) {
  BroadcastResult out;
  BroadcastFromLeader(group, leader, num_elements, leader_start, out);
  return out;
}

}  // namespace psra::comm
