#include "comm/intranode.hpp"

#include <algorithm>

#include "support/status.hpp"

namespace psra::comm {

ReduceResult ReduceToLeader(const GroupComm& group, GroupRank leader,
                            std::span<const linalg::DenseVector> inputs,
                            std::span<const simnet::VirtualTime> starts) {
  PSRA_REQUIRE(leader < group.size(), "leader rank out of range");
  PSRA_REQUIRE(inputs.size() == group.size(), "one input per member required");
  PSRA_REQUIRE(starts.size() == group.size(), "one start per member required");
  const std::size_t dim = inputs[0].size();
  for (const auto& v : inputs) {
    PSRA_REQUIRE(v.size() == dim, "input dimension mismatch");
  }

  const auto& cm = group.cost_model();
  ReduceResult out;
  out.finish_times.assign(group.size(), 0.0);

  out.value.assign(dim, 0.0);
  for (GroupRank g = 0; g < group.size(); ++g) {
    linalg::Axpy(1.0, inputs[g], out.value);
  }

  out.leader_ready = starts[leader];
  out.finish_times[leader] = starts[leader];
  for (GroupRank g = 0; g < group.size(); ++g) {
    if (g == leader) continue;
    const simnet::VirtualTime cost =
        cm.DenseTransferTime(group.LinkBetween(g, leader), dim);
    const simnet::VirtualTime done = starts[g] + cost;
    out.finish_times[g] = done;
    out.leader_ready = std::max(out.leader_ready, done);
    out.elements_sent += dim;
    ++out.messages_sent;
    out.total_send_time += cost;
  }
  return out;
}

BroadcastResult BroadcastFromLeader(const GroupComm& group, GroupRank leader,
                                    std::size_t num_elements,
                                    simnet::VirtualTime leader_start) {
  PSRA_REQUIRE(leader < group.size(), "leader rank out of range");
  const auto& cm = group.cost_model();
  BroadcastResult out;
  out.finish_times.assign(group.size(), leader_start);

  simnet::VirtualTime clock = leader_start;
  for (GroupRank g = 0; g < group.size(); ++g) {
    if (g == leader) continue;
    const simnet::VirtualTime cost =
        cm.DenseTransferTime(group.LinkBetween(leader, g), num_elements);
    clock += cost;
    out.finish_times[g] = clock;
    out.elements_sent += num_elements;
    ++out.messages_sent;
    out.total_send_time += cost;
  }
  out.finish_times[leader] = clock;
  return out;
}

}  // namespace psra::comm
