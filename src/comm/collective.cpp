#include "comm/collective.hpp"

#include <algorithm>

#include "comm/allreduce_impl.hpp"
#include "simnet/fault.hpp"
#include "support/status.hpp"
#include "support/string_util.hpp"

namespace psra::comm {

simnet::VirtualTime CommStats::Span(
    std::span<const simnet::VirtualTime> starts) const {
  simnet::VirtualTime max_start = 0.0;
  for (auto s : starts) max_start = std::max(max_start, s);
  return all_done - max_start;
}

void CommStats::Reset(std::size_t n) {
  finish_times.assign(n, 0.0);
  scatter_reduce_done = 0.0;
  all_done = 0.0;
  elements_sent = 0;
  messages_sent = 0;
  bytes_sent = 0;
  rounds = 0;
  total_send_time = 0.0;
}

void AllreduceAlgorithm::ReduceDense(
    const GroupComm& group, std::span<const linalg::DenseVector> inputs,
    std::span<const simnet::VirtualTime> starts, AllreduceScratch& /*scratch*/,
    linalg::DenseVector& sum, CommStats& stats) const {
  auto res = RunDense(group, inputs, starts);
  sum = std::move(res.outputs[0]);
  stats = std::move(res.stats);
}

void AllreduceAlgorithm::ReduceSparse(
    const GroupComm& group, std::span<const linalg::SparseVector> inputs,
    std::span<const simnet::VirtualTime> starts, AllreduceScratch& /*scratch*/,
    linalg::SparseVector& sum, CommStats& stats) const {
  auto res = RunSparse(group, inputs, starts);
  sum = std::move(res.outputs[0]);
  stats = std::move(res.stats);
}

namespace {

/// Shared half of the fault protocol: applies per-member entry delays, then
/// draws drop coins attempt by attempt. Each attempt with at least one drop
/// stalls every member by retry_timeout_s; after max_retries the members
/// still dropping are left in fc.excluded (ascending group rank) and the
/// caller degrades to the survivors. Returns true when degradation is
/// needed. fc.adj_starts holds the delay+timeout-adjusted start times.
bool RunFaultProtocol(const GroupComm& group,
                      std::span<const simnet::VirtualTime> starts,
                      FaultContext& fc) {
  const auto& plan = *fc.plan;
  const auto& cfg = plan.config();
  const std::uint64_t channel = fc.channel++;
  const GroupRank n = group.size();

  fc.excluded.clear();
  fc.adj_starts.resize(n);
  for (GroupRank g = 0; g < n; ++g) {
    const simnet::Rank r = group.GlobalRank(g);
    const simnet::VirtualTime delay =
        plan.MessageDelay(fc.iteration, channel, r, r);
    if (delay > 0.0) ++fc.delayed_messages;
    fc.adj_starts[g] = starts[g] + delay;
  }

  if (cfg.message_drop_probability == 0.0) return false;

  simnet::VirtualTime penalty = 0.0;
  for (std::uint32_t attempt = 0;; ++attempt) {
    fc.excluded.clear();
    for (GroupRank g = 0; g < n; ++g) {
      if (plan.DropsMessage(fc.iteration, channel, group.GlobalRank(g),
                            attempt)) {
        fc.excluded.push_back(g);
      }
    }
    if (fc.excluded.empty()) break;
    fc.dropped_messages += fc.excluded.size();
    penalty += cfg.retry_timeout_s;
    if (attempt == cfg.max_retries) break;  // bounded: give up on these
    ++fc.retries;
  }
  if (penalty > 0.0) {
    for (GroupRank g = 0; g < n; ++g) fc.adj_starts[g] += penalty;
  }
  return !fc.excluded.empty();
}

/// Splits the group into survivors (ranks + starts into fc) and returns
/// whether group rank g is excluded via the sorted fc.excluded list.
void CollectSurvivors(const GroupComm& group, FaultContext& fc) {
  const GroupRank n = group.size();
  fc.survivor_ranks.clear();
  fc.survivor_starts.clear();
  std::size_t next_ex = 0;
  for (GroupRank g = 0; g < n; ++g) {
    if (next_ex < fc.excluded.size() && fc.excluded[next_ex] == g) {
      ++next_ex;
      continue;
    }
    fc.survivor_ranks.push_back(group.GlobalRank(g));
    fc.survivor_starts.push_back(fc.adj_starts[g]);
  }
  PSRA_REQUIRE(!fc.survivor_ranks.empty(),
               "fault plan excluded every member of a collective");
}

/// Maps the survivor-subgroup stats back onto the full group: excluded
/// members "finish" at their adjusted start (they observed the timeouts and
/// contributed nothing), survivors keep their subgroup finish times.
void ExpandStats(const GroupComm& group, const FaultContext& fc,
                 CommStats& stats) {
  const GroupRank n = group.size();
  stats.Reset(n);
  std::size_t si = 0, next_ex = 0;
  for (GroupRank g = 0; g < n; ++g) {
    if (next_ex < fc.excluded.size() && fc.excluded[next_ex] == g) {
      ++next_ex;
      stats.finish_times[g] = fc.adj_starts[g];
    } else {
      stats.finish_times[g] = fc.sub_stats.finish_times[si++];
    }
  }
  stats.scatter_reduce_done = fc.sub_stats.scatter_reduce_done;
  stats.elements_sent = fc.sub_stats.elements_sent;
  stats.messages_sent = fc.sub_stats.messages_sent;
  stats.bytes_sent = fc.sub_stats.bytes_sent;
  stats.rounds = fc.sub_stats.rounds;
  stats.total_send_time = fc.sub_stats.total_send_time;
  stats.all_done =
      *std::max_element(stats.finish_times.begin(), stats.finish_times.end());
}

}  // namespace

void AllreduceAlgorithm::ReduceDenseFaulty(
    const GroupComm& group, std::span<const linalg::DenseVector> inputs,
    std::span<const simnet::VirtualTime> starts, FaultContext& fc,
    AllreduceScratch& scratch, linalg::DenseVector& sum,
    CommStats& stats) const {
  if (fc.plan == nullptr || fc.plan->Empty()) {
    fc.excluded.clear();
    ReduceDense(group, inputs, starts, scratch, sum, stats);
    return;
  }
  detail::CheckDenseInputs(group, inputs, starts);
  if (!RunFaultProtocol(group, starts, fc)) {
    ReduceDense(group, inputs, fc.adj_starts, scratch, sum, stats);
    return;
  }
  CollectSurvivors(group, fc);
  fc.survivor_dense.resize(fc.survivor_ranks.size());
  std::size_t si = 0, next_ex = 0;
  for (GroupRank g = 0; g < group.size(); ++g) {
    if (next_ex < fc.excluded.size() && fc.excluded[next_ex] == g) {
      ++next_ex;
      continue;
    }
    fc.survivor_dense[si++] = inputs[g];
  }
  const GroupComm sub(&group.topology(), &group.cost_model(),
                      fc.survivor_ranks);
  ReduceDense(sub, fc.survivor_dense, fc.survivor_starts, scratch, sum,
              fc.sub_stats);
  ExpandStats(group, fc, stats);
}

void AllreduceAlgorithm::ReduceSparseFaulty(
    const GroupComm& group, std::span<const linalg::SparseVector> inputs,
    std::span<const simnet::VirtualTime> starts, FaultContext& fc,
    AllreduceScratch& scratch, linalg::SparseVector& sum,
    CommStats& stats) const {
  if (fc.plan == nullptr || fc.plan->Empty()) {
    fc.excluded.clear();
    ReduceSparse(group, inputs, starts, scratch, sum, stats);
    return;
  }
  detail::CheckSparseInputs(group, inputs, starts);
  if (!RunFaultProtocol(group, starts, fc)) {
    ReduceSparse(group, inputs, fc.adj_starts, scratch, sum, stats);
    return;
  }
  CollectSurvivors(group, fc);
  fc.survivor_sparse.resize(fc.survivor_ranks.size());
  std::size_t si = 0, next_ex = 0;
  for (GroupRank g = 0; g < group.size(); ++g) {
    if (next_ex < fc.excluded.size() && fc.excluded[next_ex] == g) {
      ++next_ex;
      continue;
    }
    fc.survivor_sparse[si++] = inputs[g];
  }
  const GroupComm sub(&group.topology(), &group.cost_model(),
                      fc.survivor_ranks);
  ReduceSparse(sub, fc.survivor_sparse, fc.survivor_starts, scratch, sum,
               fc.sub_stats);
  ExpandStats(group, fc, stats);
}

std::unique_ptr<AllreduceAlgorithm> MakeAllreduce(AllreduceKind kind) {
  switch (kind) {
    case AllreduceKind::kNaive: return std::make_unique<NaiveAllreduce>();
    case AllreduceKind::kRing: return std::make_unique<RingAllreduce>();
    case AllreduceKind::kPsr: return std::make_unique<PsrAllreduce>();
    case AllreduceKind::kRhd: return std::make_unique<RhdAllreduce>();
    case AllreduceKind::kTree: return std::make_unique<TreeAllreduce>();
  }
  throw InvalidArgument("unknown allreduce kind");
}

std::unique_ptr<AllreduceAlgorithm> MakeAllreduce(const std::string& name) {
  const std::string n = ToLower(name);
  if (n == "naive") return MakeAllreduce(AllreduceKind::kNaive);
  if (n == "ring") return MakeAllreduce(AllreduceKind::kRing);
  if (n == "psr") return MakeAllreduce(AllreduceKind::kPsr);
  if (n == "rhd") return MakeAllreduce(AllreduceKind::kRhd);
  if (n == "tree") return MakeAllreduce(AllreduceKind::kTree);
  throw InvalidArgument("unknown allreduce algorithm: " + name);
}

namespace detail {

std::uint64_t CheckDenseInputs(const GroupComm& group,
                               std::span<const linalg::DenseVector> inputs,
                               std::span<const simnet::VirtualTime> starts) {
  PSRA_REQUIRE(inputs.size() == group.size(),
               "one input vector per group member required");
  PSRA_REQUIRE(starts.size() == group.size(),
               "one start time per group member required");
  PSRA_REQUIRE(!inputs.empty(), "empty group");
  const std::uint64_t dim = inputs[0].size();
  for (const auto& v : inputs) {
    PSRA_REQUIRE(v.size() == dim, "input dimension mismatch");
  }
  return dim;
}

std::uint64_t CheckSparseInputs(const GroupComm& group,
                                std::span<const linalg::SparseVector> inputs,
                                std::span<const simnet::VirtualTime> starts) {
  PSRA_REQUIRE(inputs.size() == group.size(),
               "one input vector per group member required");
  PSRA_REQUIRE(starts.size() == group.size(),
               "one start time per group member required");
  PSRA_REQUIRE(!inputs.empty(), "empty group");
  const std::uint64_t dim = inputs[0].dim();
  for (const auto& v : inputs) {
    PSRA_REQUIRE(v.dim() == dim, "input dimension mismatch");
  }
  return dim;
}

}  // namespace detail

}  // namespace psra::comm
