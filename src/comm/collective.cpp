#include "comm/collective.hpp"

#include <algorithm>

#include "comm/allreduce_impl.hpp"
#include "support/status.hpp"
#include "support/string_util.hpp"

namespace psra::comm {

simnet::VirtualTime CommStats::Span(
    std::span<const simnet::VirtualTime> starts) const {
  simnet::VirtualTime max_start = 0.0;
  for (auto s : starts) max_start = std::max(max_start, s);
  return all_done - max_start;
}

void CommStats::Reset(std::size_t n) {
  finish_times.assign(n, 0.0);
  scatter_reduce_done = 0.0;
  all_done = 0.0;
  elements_sent = 0;
  messages_sent = 0;
  total_send_time = 0.0;
}

void AllreduceAlgorithm::ReduceDense(
    const GroupComm& group, std::span<const linalg::DenseVector> inputs,
    std::span<const simnet::VirtualTime> starts, AllreduceScratch& /*scratch*/,
    linalg::DenseVector& sum, CommStats& stats) const {
  auto res = RunDense(group, inputs, starts);
  sum = std::move(res.outputs[0]);
  stats = std::move(res.stats);
}

void AllreduceAlgorithm::ReduceSparse(
    const GroupComm& group, std::span<const linalg::SparseVector> inputs,
    std::span<const simnet::VirtualTime> starts, AllreduceScratch& /*scratch*/,
    linalg::SparseVector& sum, CommStats& stats) const {
  auto res = RunSparse(group, inputs, starts);
  sum = std::move(res.outputs[0]);
  stats = std::move(res.stats);
}

std::unique_ptr<AllreduceAlgorithm> MakeAllreduce(AllreduceKind kind) {
  switch (kind) {
    case AllreduceKind::kNaive: return std::make_unique<NaiveAllreduce>();
    case AllreduceKind::kRing: return std::make_unique<RingAllreduce>();
    case AllreduceKind::kPsr: return std::make_unique<PsrAllreduce>();
    case AllreduceKind::kRhd: return std::make_unique<RhdAllreduce>();
    case AllreduceKind::kTree: return std::make_unique<TreeAllreduce>();
  }
  throw InvalidArgument("unknown allreduce kind");
}

std::unique_ptr<AllreduceAlgorithm> MakeAllreduce(const std::string& name) {
  const std::string n = ToLower(name);
  if (n == "naive") return MakeAllreduce(AllreduceKind::kNaive);
  if (n == "ring") return MakeAllreduce(AllreduceKind::kRing);
  if (n == "psr") return MakeAllreduce(AllreduceKind::kPsr);
  if (n == "rhd") return MakeAllreduce(AllreduceKind::kRhd);
  if (n == "tree") return MakeAllreduce(AllreduceKind::kTree);
  throw InvalidArgument("unknown allreduce algorithm: " + name);
}

namespace detail {

std::uint64_t CheckDenseInputs(const GroupComm& group,
                               std::span<const linalg::DenseVector> inputs,
                               std::span<const simnet::VirtualTime> starts) {
  PSRA_REQUIRE(inputs.size() == group.size(),
               "one input vector per group member required");
  PSRA_REQUIRE(starts.size() == group.size(),
               "one start time per group member required");
  PSRA_REQUIRE(!inputs.empty(), "empty group");
  const std::uint64_t dim = inputs[0].size();
  for (const auto& v : inputs) {
    PSRA_REQUIRE(v.size() == dim, "input dimension mismatch");
  }
  return dim;
}

std::uint64_t CheckSparseInputs(const GroupComm& group,
                                std::span<const linalg::SparseVector> inputs,
                                std::span<const simnet::VirtualTime> starts) {
  PSRA_REQUIRE(inputs.size() == group.size(),
               "one input vector per group member required");
  PSRA_REQUIRE(starts.size() == group.size(),
               "one start time per group member required");
  PSRA_REQUIRE(!inputs.empty(), "empty group");
  const std::uint64_t dim = inputs[0].dim();
  for (const auto& v : inputs) {
    PSRA_REQUIRE(v.dim() == dim, "input dimension mismatch");
  }
  return dim;
}

}  // namespace detail

}  // namespace psra::comm
