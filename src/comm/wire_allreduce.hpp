// SPMD allreduce collectives over a comm::Transport.
//
// The simulator's collectives are omniscient: one call sees every member's
// input and computes the sum with a fixed floating-point fold order. These
// are the rank-local counterparts — each rank contributes only its own
// vector and exchanges real messages — written to mirror each simulator
// algorithm's fold order EXACTLY, so the reduced values are bitwise
// identical to the simulator's across every backend:
//
//   psr    dense:  owner accumulates block contributions in ascending
//                  group-rank order into a zero-initialized block (the
//                  simulator's zeros + Axpy fold restricted to the block);
//          sparse: owner starts from rank 0's slice, then SumInto in
//                  ascending contributor order (simulator's ping-pong).
//   ring   both:   receiver folds the incoming partial INTO its local block
//                  (dst += src) following the ring schedule — deliberately
//                  NOT ascending-rank order, because that is what the
//                  simulator's RingRunner computes.
//   naive  dense:  root folds all vectors ascending into zeros + Axpy;
//          sparse: root starts from rank 0's vector, SumInto ascending.
//
// Traffic accounting goes through the same CountSend formula and
// ElemPricing the simulator uses, and messages are counted exactly where
// the simulator counts them (notably: PSR and the naive sparse gather skip
// EMPTY sparse payloads in the counters — the wire still ships a
// zero-length frame so receivers never block on a message that is not
// coming, but the counters stay comparable). Summing WireStats across all
// ranks therefore reproduces the simulator's aggregate CommStats traffic,
// and per-rank `rounds` equals the simulator's phase count.
#pragma once

#include <cstdint>
#include <span>

#include "comm/collective.hpp"
#include "comm/pricing.hpp"
#include "comm/transport.hpp"
#include "linalg/dense_ops.hpp"
#include "linalg/sparse_vector.hpp"

namespace psra::comm {

/// Per-rank traffic accounting of one wire collective. Aggregate across
/// members to compare against the simulator's CommStats (see above).
struct WireStats {
  std::size_t elements_sent = 0;
  std::size_t messages_sent = 0;
  std::size_t bytes_sent = 0;
  /// Communication phases this rank participated in; equals the simulator's
  /// CommStats::rounds for the flat collectives.
  std::size_t rounds = 0;

  // Multi-level decomposition (zero for flat collectives). The simulator
  // books each rack stage's rounds once per rack plus the root stage once;
  // per-rank totals cannot be summed naively, so the stages are kept apart
  // for the cross-backend aggregation.
  std::size_t rack_rounds = 0;
  std::size_t root_rounds = 0;  // nonzero only on rack leaders
  /// Stage-3 redistribution traffic (leaders only), matching the simulator's
  /// separately-reported redistribution_elements()/messages().
  std::size_t redist_elements = 0;
  std::size_t redist_messages = 0;

  void Reset() { *this = WireStats{}; }
  void CountSend(std::size_t elems, std::size_t per_elem_bytes) {
    detail::CountSend(elems, per_elem_bytes, elements_sent, messages_sent,
                      bytes_sent);
  }

  bool operator==(const WireStats& other) const = default;
};

/// Runs the simulator's collectives SPMD over a Transport. One instance per
/// rank; every member of a collective must call the same method with the
/// same member list in the same program order (tags are derived from a
/// per-instance epoch counter that must advance in lockstep).
class WireCollectives {
 public:
  /// `pricing` must equal the simulator cost model's widths (see
  /// GroupComm::pricing()) for byte counters to be comparable.
  /// When `obs` is non-null every collective records a wall-clock span
  /// (wire_allreduce / wire_multilevel with nested per-stage spans) and
  /// wire.collective.* / wire.phase.* wall histograms into it; null costs
  /// one branch per collective.
  WireCollectives(Transport& transport, ElemPricing pricing,
                  obs::WireObs* obs = nullptr)
      : transport_(transport), pricing_(pricing), obs_(obs) {}

  Transport& transport() { return transport_; }

  /// Flat allreduce over `members` (distinct transport ranks; order defines
  /// group rank and therefore the fold order). The calling rank must be a
  /// member; `out` receives the group sum. Supported kinds: kPsr, kRing,
  /// kNaive.
  void AllreduceDense(AllreduceKind kind,
                      std::span<const Transport::Rank> members,
                      const linalg::DenseVector& input,
                      linalg::DenseVector& out, WireStats& st);
  void AllreduceSparse(AllreduceKind kind,
                       std::span<const Transport::Rank> members,
                       const linalg::SparseVector& input,
                       linalg::SparseVector& out, WireStats& st);

  /// Multi-level (rack -> root -> redistribute) allreduce mirroring
  /// MultiLevelAllreduce: `members` are partitioned into contiguous racks of
  /// `per_rack`; each rack runs `kind` over its members, the rack leaders
  /// (first member of each rack) run `kind` across racks, then every leader
  /// serializes the global sum back to its rack peers (accounted in
  /// redist_*). Every rank in `members` must call.
  void MultiLevelDense(AllreduceKind kind,
                       std::span<const Transport::Rank> members,
                       std::uint32_t per_rack,
                       const linalg::DenseVector& input,
                       linalg::DenseVector& out, WireStats& st);
  void MultiLevelSparse(AllreduceKind kind,
                        std::span<const Transport::Rank> members,
                        std::uint32_t per_rack,
                        const linalg::SparseVector& input,
                        linalg::SparseVector& out, WireStats& st);

 private:
  Transport::Tag NextBaseTag();

  Transport& transport_;
  ElemPricing pricing_;
  obs::WireObs* obs_ = nullptr;
  std::uint32_t epoch_ = 0;
};

}  // namespace psra::comm
