#include <algorithm>

#include "comm/allreduce_impl.hpp"
#include "support/status.hpp"

namespace psra::comm {

namespace {

/// Shared timing skeleton: members send whole vectors to root (parallel
/// sends, each priced on its own link), root reduces, then serializes a
/// broadcast back out. `sizes[g]` is the element count member g contributes;
/// `reduced_size` the element count of the reduced vector root returns.
void NaiveTiming(const GroupComm& group,
                 std::span<const simnet::VirtualTime> starts,
                 std::span<const std::size_t> sizes, std::size_t reduced_size,
                 bool sparse, CommStats& st) {
  const auto& cm = group.cost_model();
  const GroupRank n = group.size();
  st.Reset(n);
  const std::size_t elem_bytes = group.pricing().PerElement(sparse);

  auto transfer = [&](GroupRank a, GroupRank b, std::size_t elems) {
    const simnet::Link link = group.LinkBetween(a, b);
    return sparse ? cm.SparseTransferTime(link, elems)
                  : cm.DenseTransferTime(link, elems);
  };

  if (n == 1) {
    st.finish_times[0] = starts[0];
    st.all_done = starts[0];
    st.scatter_reduce_done = starts[0];
    return;
  }

  // Gather: each non-root member sends its whole vector to root.
  simnet::VirtualTime root_ready = starts[0];
  for (GroupRank g = 1; g < n; ++g) {
    if (sparse && sizes[g] == 0) continue;  // nothing to contribute
    const simnet::VirtualTime t = transfer(g, 0, sizes[g]);
    root_ready = std::max(root_ready, starts[g] + t);
    st.CountSend(sizes[g], elem_bytes);
    st.total_send_time += t;
  }
  ++st.rounds;  // gather phase
  st.scatter_reduce_done = root_ready;

  // Broadcast: root serializes sends in ascending rank order.
  simnet::VirtualTime send_clock = root_ready;
  for (GroupRank g = 1; g < n; ++g) {
    const simnet::VirtualTime t = transfer(0, g, reduced_size);
    send_clock += t;
    st.finish_times[g] = std::max(send_clock, starts[g]);
    st.CountSend(reduced_size, elem_bytes);
    st.total_send_time += t;
  }
  ++st.rounds;  // broadcast phase
  st.finish_times[0] = send_clock;
  st.all_done = *std::max_element(st.finish_times.begin(), st.finish_times.end());
}

}  // namespace

void NaiveAllreduce::ReduceDense(const GroupComm& group,
                                 std::span<const linalg::DenseVector> inputs,
                                 std::span<const simnet::VirtualTime> starts,
                                 AllreduceScratch& scratch,
                                 linalg::DenseVector& sum,
                                 CommStats& stats) const {
  const std::uint64_t dim = detail::CheckDenseInputs(group, inputs, starts);
  const GroupRank n = group.size();

  sum.assign(static_cast<std::size_t>(dim), 0.0);
  for (GroupRank g = 0; g < n; ++g) {
    linalg::Axpy(1.0, inputs[g], sum);
  }

  scratch.sizes.assign(n, static_cast<std::size_t>(dim));
  NaiveTiming(group, starts, scratch.sizes, static_cast<std::size_t>(dim),
              /*sparse=*/false, stats);
}

void NaiveAllreduce::ReduceSparse(const GroupComm& group,
                                  std::span<const linalg::SparseVector> inputs,
                                  std::span<const simnet::VirtualTime> starts,
                                  AllreduceScratch& scratch,
                                  linalg::SparseVector& sum,
                                  CommStats& stats) const {
  detail::CheckSparseInputs(group, inputs, starts);
  const GroupRank n = group.size();

  // Reduce in ascending rank order via ping-pong accumulators so each merge
  // reuses previously grown storage.
  sum = inputs[0];
  for (GroupRank g = 1; g < n; ++g) {
    linalg::SparseVector::SumInto(sum, inputs[g], scratch.sparse_tmp);
    std::swap(sum, scratch.sparse_tmp);
  }

  scratch.sizes.resize(n);
  for (GroupRank g = 0; g < n; ++g) scratch.sizes[g] = inputs[g].nnz();
  NaiveTiming(group, starts, scratch.sizes, sum.nnz(), /*sparse=*/true, stats);
}

DenseAllreduceResult NaiveAllreduce::RunDense(
    const GroupComm& group, std::span<const linalg::DenseVector> inputs,
    std::span<const simnet::VirtualTime> starts) const {
  AllreduceScratch scratch;
  DenseAllreduceResult out;
  linalg::DenseVector sum;
  ReduceDense(group, inputs, starts, scratch, sum, out.stats);
  out.outputs.assign(group.size(), sum);
  return out;
}

SparseAllreduceResult NaiveAllreduce::RunSparse(
    const GroupComm& group, std::span<const linalg::SparseVector> inputs,
    std::span<const simnet::VirtualTime> starts) const {
  AllreduceScratch scratch;
  SparseAllreduceResult out;
  linalg::SparseVector sum;
  ReduceSparse(group, inputs, starts, scratch, sum, out.stats);
  out.outputs.assign(group.size(), sum);
  return out;
}

}  // namespace psra::comm
