#include <algorithm>

#include "comm/allreduce_impl.hpp"
#include "support/status.hpp"

namespace psra::comm {

namespace {

/// Shared timing skeleton: members send whole vectors to root (parallel
/// sends, each priced on its own link), root reduces, then serializes a
/// broadcast back out. `sizes[g]` is the element count member g contributes;
/// `reduced_size` the element count of the reduced vector root returns.
CommStats NaiveTiming(const GroupComm& group,
                      std::span<const simnet::VirtualTime> starts,
                      std::span<const std::size_t> sizes,
                      std::size_t reduced_size, bool sparse) {
  const auto& cm = group.cost_model();
  const GroupRank n = group.size();
  CommStats st;
  st.finish_times.assign(n, 0.0);

  auto transfer = [&](GroupRank a, GroupRank b, std::size_t elems) {
    const simnet::Link link = group.LinkBetween(a, b);
    return sparse ? cm.SparseTransferTime(link, elems)
                  : cm.DenseTransferTime(link, elems);
  };

  if (n == 1) {
    st.finish_times[0] = starts[0];
    st.all_done = starts[0];
    st.scatter_reduce_done = starts[0];
    return st;
  }

  // Gather: each non-root member sends its whole vector to root.
  simnet::VirtualTime root_ready = starts[0];
  for (GroupRank g = 1; g < n; ++g) {
    if (sparse && sizes[g] == 0) continue;  // nothing to contribute
    const simnet::VirtualTime t = transfer(g, 0, sizes[g]);
    root_ready = std::max(root_ready, starts[g] + t);
    st.elements_sent += sizes[g];
    ++st.messages_sent;
    st.total_send_time += t;
  }
  st.scatter_reduce_done = root_ready;

  // Broadcast: root serializes sends in ascending rank order.
  simnet::VirtualTime send_clock = root_ready;
  for (GroupRank g = 1; g < n; ++g) {
    const simnet::VirtualTime t = transfer(0, g, reduced_size);
    send_clock += t;
    st.finish_times[g] = std::max(send_clock, starts[g]);
    st.elements_sent += reduced_size;
    ++st.messages_sent;
    st.total_send_time += t;
  }
  st.finish_times[0] = send_clock;
  st.all_done = *std::max_element(st.finish_times.begin(), st.finish_times.end());
  return st;
}

}  // namespace

DenseAllreduceResult NaiveAllreduce::RunDense(
    const GroupComm& group, std::span<const linalg::DenseVector> inputs,
    std::span<const simnet::VirtualTime> starts) const {
  const std::uint64_t dim = detail::CheckDenseInputs(group, inputs, starts);
  const GroupRank n = group.size();

  linalg::DenseVector sum(static_cast<std::size_t>(dim), 0.0);
  for (GroupRank g = 0; g < n; ++g) {
    linalg::Axpy(1.0, inputs[g], sum);
  }

  std::vector<std::size_t> sizes(n, static_cast<std::size_t>(dim));
  DenseAllreduceResult out;
  out.stats = NaiveTiming(group, starts, sizes, static_cast<std::size_t>(dim),
                          /*sparse=*/false);
  out.outputs.assign(n, sum);
  return out;
}

SparseAllreduceResult NaiveAllreduce::RunSparse(
    const GroupComm& group, std::span<const linalg::SparseVector> inputs,
    std::span<const simnet::VirtualTime> starts) const {
  detail::CheckSparseInputs(group, inputs, starts);
  const GroupRank n = group.size();

  linalg::SparseVector sum = inputs[0];
  for (GroupRank g = 1; g < n; ++g) {
    sum = linalg::SparseVector::Sum(sum, inputs[g]);
  }

  std::vector<std::size_t> sizes(n);
  for (GroupRank g = 0; g < n; ++g) sizes[g] = inputs[g].nnz();
  SparseAllreduceResult out;
  out.stats = NaiveTiming(group, starts, sizes, sum.nnz(), /*sparse=*/true);
  out.outputs.assign(n, sum);
  return out;
}

}  // namespace psra::comm
