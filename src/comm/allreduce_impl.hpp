// Concrete allreduce algorithms. Exposed for tests/benches that want a
// specific implementation; most callers go through MakeAllreduce().
#pragma once

#include "comm/collective.hpp"

namespace psra::comm {

/// Gather-to-root + broadcast. This is the master-worker exchange pattern of
/// the classic global consensus ADMM (paper Section 4.1) and the baseline
/// that concentrates load on one rank.
class NaiveAllreduce final : public AllreduceAlgorithm {
 public:
  std::string Name() const override { return "naive"; }
  DenseAllreduceResult RunDense(
      const GroupComm& group, std::span<const linalg::DenseVector> inputs,
      std::span<const simnet::VirtualTime> starts) const override;
  SparseAllreduceResult RunSparse(
      const GroupComm& group, std::span<const linalg::SparseVector> inputs,
      std::span<const simnet::VirtualTime> starts) const override;
  void ReduceDense(const GroupComm& group,
                   std::span<const linalg::DenseVector> inputs,
                   std::span<const simnet::VirtualTime> starts,
                   AllreduceScratch& scratch, linalg::DenseVector& sum,
                   CommStats& stats) const override;
  void ReduceSparse(const GroupComm& group,
                    std::span<const linalg::SparseVector> inputs,
                    std::span<const simnet::VirtualTime> starts,
                    AllreduceScratch& scratch, linalg::SparseVector& sum,
                    CommStats& stats) const override;
};

/// Classic Ring-Allreduce [Gibiansky'17]: N-1 scatter-reduce rounds passing
/// partial block sums around a unidirectional ring, then N-1 allgather
/// rounds. Per-member pipeline timing: a member enters round r+1 once it has
/// finished its round-r send and its predecessor's round-r data has arrived.
class RingAllreduce final : public AllreduceAlgorithm {
 public:
  std::string Name() const override { return "ring"; }
  DenseAllreduceResult RunDense(
      const GroupComm& group, std::span<const linalg::DenseVector> inputs,
      std::span<const simnet::VirtualTime> starts) const override;
  SparseAllreduceResult RunSparse(
      const GroupComm& group, std::span<const linalg::SparseVector> inputs,
      std::span<const simnet::VirtualTime> starts) const override;
  void ReduceDense(const GroupComm& group,
                   std::span<const linalg::DenseVector> inputs,
                   std::span<const simnet::VirtualTime> starts,
                   AllreduceScratch& scratch, linalg::DenseVector& sum,
                   CommStats& stats) const override;
  void ReduceSparse(const GroupComm& group,
                    std::span<const linalg::SparseVector> inputs,
                    std::span<const simnet::VirtualTime> starts,
                    AllreduceScratch& scratch, linalg::SparseVector& sum,
                    CommStats& stats) const override;
};

/// Recursive halving-doubling Allreduce (the classic MPI power-of-two
/// algorithm): log2(N) reduce-scatter exchanges with halving block sizes,
/// then log2(N) allgather exchanges with doubling block sizes. Non-power-of-
/// two groups fold the remainder ranks into their partners first. Included
/// as an additional baseline for the collective comparison; not part of the
/// paper's evaluation.
class RhdAllreduce final : public AllreduceAlgorithm {
 public:
  std::string Name() const override { return "rhd"; }
  DenseAllreduceResult RunDense(
      const GroupComm& group, std::span<const linalg::DenseVector> inputs,
      std::span<const simnet::VirtualTime> starts) const override;
  SparseAllreduceResult RunSparse(
      const GroupComm& group, std::span<const linalg::SparseVector> inputs,
      std::span<const simnet::VirtualTime> starts) const override;
  void ReduceDense(const GroupComm& group,
                   std::span<const linalg::DenseVector> inputs,
                   std::span<const simnet::VirtualTime> starts,
                   AllreduceScratch& scratch, linalg::DenseVector& sum,
                   CommStats& stats) const override;
  void ReduceSparse(const GroupComm& group,
                    std::span<const linalg::SparseVector> inputs,
                    std::span<const simnet::VirtualTime> starts,
                    AllreduceScratch& scratch, linalg::SparseVector& sum,
                    CommStats& stats) const override;
};

/// Binomial-tree Allreduce: tree reduce to group rank 0 followed by a
/// binomial-tree broadcast. log2(N) rounds each way with full-vector
/// payloads; latency-optimal for tiny vectors, bandwidth-poor for large
/// ones. Additional baseline, not part of the paper's evaluation.
class TreeAllreduce final : public AllreduceAlgorithm {
 public:
  std::string Name() const override { return "tree"; }
  DenseAllreduceResult RunDense(
      const GroupComm& group, std::span<const linalg::DenseVector> inputs,
      std::span<const simnet::VirtualTime> starts) const override;
  SparseAllreduceResult RunSparse(
      const GroupComm& group, std::span<const linalg::SparseVector> inputs,
      std::span<const simnet::VirtualTime> starts) const override;
  void ReduceDense(const GroupComm& group,
                   std::span<const linalg::DenseVector> inputs,
                   std::span<const simnet::VirtualTime> starts,
                   AllreduceScratch& scratch, linalg::DenseVector& sum,
                   CommStats& stats) const override;
  void ReduceSparse(const GroupComm& group,
                    std::span<const linalg::SparseVector> inputs,
                    std::span<const simnet::VirtualTime> starts,
                    AllreduceScratch& scratch, linalg::SparseVector& sum,
                    CommStats& stats) const override;
};

/// PSR-Allreduce (paper Section 4.2): parameter-server-inspired variant.
/// Scatter-Reduce sends every block DIRECTLY to its owning rank (one hop)
/// instead of circulating partial sums; Allgather has each owner send its
/// fully reduced block to every other member. Empty sparse blocks are
/// skipped entirely, which yields the paper's best case T_psr-sr = 0.
class PsrAllreduce final : public AllreduceAlgorithm {
 public:
  std::string Name() const override { return "psr"; }
  DenseAllreduceResult RunDense(
      const GroupComm& group, std::span<const linalg::DenseVector> inputs,
      std::span<const simnet::VirtualTime> starts) const override;
  SparseAllreduceResult RunSparse(
      const GroupComm& group, std::span<const linalg::SparseVector> inputs,
      std::span<const simnet::VirtualTime> starts) const override;
  void ReduceDense(const GroupComm& group,
                   std::span<const linalg::DenseVector> inputs,
                   std::span<const simnet::VirtualTime> starts,
                   AllreduceScratch& scratch, linalg::DenseVector& sum,
                   CommStats& stats) const override;
  void ReduceSparse(const GroupComm& group,
                    std::span<const linalg::SparseVector> inputs,
                    std::span<const simnet::VirtualTime> starts,
                    AllreduceScratch& scratch, linalg::SparseVector& sum,
                    CommStats& stats) const override;
};

}  // namespace psra::comm
