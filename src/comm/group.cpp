#include "comm/group.hpp"

#include <algorithm>

#include "support/status.hpp"

namespace psra::comm {

GroupComm::GroupComm(const simnet::Topology* topo,
                     const simnet::CostModel* cost,
                     std::vector<simnet::Rank> members)
    : topo_(topo), cost_(cost), members_(std::move(members)) {
  PSRA_REQUIRE(topo_ != nullptr && cost_ != nullptr,
               "group needs topology and cost model");
  Validate();
}

void GroupComm::Rebind(std::span<const simnet::Rank> members) {
  members_.assign(members.begin(), members.end());
  Validate();
}

void GroupComm::Validate() const {
  PSRA_REQUIRE(!members_.empty(), "group must have at least one member");
  validate_scratch_.assign(members_.begin(), members_.end());
  std::sort(validate_scratch_.begin(), validate_scratch_.end());
  PSRA_REQUIRE(std::adjacent_find(validate_scratch_.begin(),
                                  validate_scratch_.end()) ==
                   validate_scratch_.end(),
               "group members must be distinct");
  for (simnet::Rank r : members_) {
    PSRA_REQUIRE(r < topo_->world_size(), "group member rank out of range");
  }
}

simnet::Rank GroupComm::GlobalRank(GroupRank g) const {
  PSRA_REQUIRE(g < size(), "group rank out of range");
  return members_[g];
}

GroupRank GroupComm::LocalRank(simnet::Rank global) const {
  for (GroupRank g = 0; g < size(); ++g) {
    if (members_[g] == global) return g;
  }
  throw InvalidArgument("rank is not a member of this group");
}

bool GroupComm::Contains(simnet::Rank global) const {
  return std::find(members_.begin(), members_.end(), global) != members_.end();
}

simnet::Link GroupComm::LinkBetween(GroupRank a, GroupRank b) const {
  return topo_->LinkBetween(GlobalRank(a), GlobalRank(b));
}

ElemPricing GroupComm::pricing() const {
  const auto& cfg = cost_->config();
  return ElemPricing{cfg.value_bytes, cfg.index_bytes};
}

std::pair<std::uint64_t, std::uint64_t> GroupComm::BlockRange(
    std::uint64_t dim, GroupRank g) const {
  PSRA_REQUIRE(g < size(), "group rank out of range");
  const std::uint64_t n = size();
  return {dim * g / n, dim * (g + 1) / n};
}

}  // namespace psra::comm
