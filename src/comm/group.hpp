// Communication group: an ordered set of global ranks that participate in a
// collective, plus the topology/cost-model context needed to price messages
// between them. Analogous to an MPI communicator.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "comm/pricing.hpp"
#include "simnet/cost_model.hpp"
#include "simnet/topology.hpp"

namespace psra::comm {

/// Rank *within* a group (0 .. size-1); distinct from simnet::Rank (global).
using GroupRank = std::uint32_t;

class GroupComm {
 public:
  /// `members` are distinct global ranks; order defines group rank.
  GroupComm(const simnet::Topology* topo, const simnet::CostModel* cost,
            std::vector<simnet::Rank> members);

  /// Re-points this communicator at a new member list, reusing the existing
  /// storage. When the new list has the same size as the old one (the common
  /// case for the size-keyed group slots the engines recycle), this performs
  /// no heap allocation.
  void Rebind(std::span<const simnet::Rank> members);

  GroupRank size() const { return static_cast<GroupRank>(members_.size()); }
  simnet::Rank GlobalRank(GroupRank g) const;
  const std::vector<simnet::Rank>& members() const { return members_; }

  /// Group rank of a global rank; throws if not a member.
  GroupRank LocalRank(simnet::Rank global) const;
  bool Contains(simnet::Rank global) const;

  simnet::Link LinkBetween(GroupRank a, GroupRank b) const;
  const simnet::CostModel& cost_model() const { return *cost_; }
  const simnet::Topology& topology() const { return *topo_; }

  /// Element widths this group's cost model prices messages at. The wire
  /// backends take the same struct, so bytes accounting agrees by
  /// construction.
  ElemPricing pricing() const;

  /// Block ownership used by the block-cyclic collectives: the vector
  /// [0, dim) is split into size() contiguous blocks; block g is owned by
  /// group rank g. Returns [begin, end) of block g.
  std::pair<std::uint64_t, std::uint64_t> BlockRange(std::uint64_t dim,
                                                     GroupRank g) const;

 private:
  void Validate() const;

  const simnet::Topology* topo_;
  const simnet::CostModel* cost_;
  std::vector<simnet::Rank> members_;
  // Sorted copy used by Validate; a member so Rebind stays allocation-free.
  mutable std::vector<simnet::Rank> validate_scratch_;
};

}  // namespace psra::comm
