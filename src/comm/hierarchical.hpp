// Recursive multi-level allreduce over the node -> rack -> cluster
// hierarchy.
//
// Generalizes the WLG two-level scheme (workers reduce to their node leader,
// leaders allreduce): with more than one rack, the leader collective itself
// recurses —
//
//   stage 1  per rack: allreduce over that rack's node leaders (rack links,
//            Link::kInterNode);
//   stage 2  across racks: allreduce over the rack leaders (the first node
//            leader of each rack) carrying the rack partial sums over the
//            slower cross-rack fabric (Link::kInterRack);
//   stage 3  redistribution: each rack leader serializes the global sum back
//            to its rack peers (same shape as the intra-node broadcast).
//
// Any AllreduceAlgorithm runs at both collective levels, so the paper's
// eq. 11-16 cost asymmetry between PSR and Ring is preserved per level. All
// members end with the identical (bitwise) global sum; per-member finish
// times compose the stage timings, and the aggregate CommStats counts the
// two collective stages (redistribution traffic is reported separately so
// algorithm comparisons stay clean — it is identical for every algorithm).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "comm/collective.hpp"
#include "comm/intranode.hpp"

namespace psra::comm {

class MultiLevelAllreduce {
 public:
  /// `members[n]` is the leader rank of node n, in ascending node order, one
  /// per node of `topo`. The topology's racks partition them contiguously;
  /// the first member of each rack acts as the rack leader.
  MultiLevelAllreduce(const simnet::Topology* topo,
                      const simnet::CostModel* cost,
                      std::span<const simnet::Rank> members);

  std::uint32_t num_racks() const {
    return static_cast<std::uint32_t>(rack_comms_.size());
  }
  std::uint32_t members_per_rack() const { return per_rack_; }

  /// Recursive dense allreduce. `sum` receives the global sum (bitwise equal
  /// on every member); `stats` the aggregate of both collective stages, with
  /// finish_times indexed like `members`. All temporaries come from
  /// `scratch` and this object's recycled buffers — steady-state calls
  /// perform no heap allocation.
  void ReduceDense(const AllreduceAlgorithm& alg,
                   std::span<const linalg::DenseVector> inputs,
                   std::span<const simnet::VirtualTime> starts,
                   AllreduceScratch& scratch, linalg::DenseVector& sum,
                   CommStats& stats);

  /// Sparse counterpart; the redistribution ships `sum.nnz()` elements.
  void ReduceSparse(const AllreduceAlgorithm& alg,
                    std::span<const linalg::SparseVector> inputs,
                    std::span<const simnet::VirtualTime> starts,
                    AllreduceScratch& scratch, linalg::SparseVector& sum,
                    CommStats& stats);

  /// Stage-3 traffic of the last Reduce* call: the rack leaders' serialized
  /// re-broadcast of the global sum to their rack peers.
  std::size_t redistribution_elements() const { return redist_elements_; }
  std::size_t redistribution_messages() const { return redist_messages_; }

 private:
  void CheckCall(std::size_t inputs, std::size_t starts) const;
  void Redistribute(std::size_t num_elements, const CommStats& root_stats,
                    CommStats& stats);

  std::vector<GroupComm> rack_comms_;  // per rack, over its node leaders
  std::optional<GroupComm> root_comm_;  // over the rack leaders
  std::uint32_t per_rack_ = 0;

  // Recycled call scratch.
  CommStats stage_stats_;
  std::vector<linalg::DenseVector> rack_dense_;
  std::vector<linalg::SparseVector> rack_sparse_;
  std::vector<simnet::VirtualTime> root_starts_;
  std::vector<simnet::Rank> rack_leaders_;
  BroadcastResult bcast_;
  std::size_t redist_elements_ = 0;
  std::size_t redist_messages_ = 0;
};

}  // namespace psra::comm
