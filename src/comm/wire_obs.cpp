#include "comm/wire_obs.hpp"

#include <array>
#include <cstring>
#include <string>
#include <string_view>

#include "support/status.hpp"

namespace psra::comm {

namespace {

using Rank = Transport::Rank;

template <typename T>
std::span<const std::byte> AsBytes(const T& v) {
  return std::as_bytes(std::span<const T>(&v, 1));
}

template <typename T>
T FromBytes(const std::vector<std::byte>& buf) {
  PSRA_REQUIRE(buf.size() == sizeof(T), "clock-sync payload size mismatch");
  T v;
  std::memcpy(&v, buf.data(), sizeof(T));
  return v;
}

}  // namespace

bool CollectWireObs(Transport& t, obs::WireObs& obs, WireObsBundle* out) {
  // Quiesce the run: every collective completed everywhere before the plane
  // reuses the wire, and the backend's queue stats land in the registry.
  t.Fence();
  t.FlushWireMetrics();
  // The plane's own frames must not record spans into the state being
  // shipped (the trace would grow while serializing it).
  t.AttachObs(nullptr);
  t.PublishTo(obs.metrics());

  const Rank world = t.world_size();
  std::vector<std::byte> buf;
  if (t.rank() == 0) {
    obs.clock_offset_s = 0.0;
    obs.metrics().Gauge(obs.RankKey("clock_offset_s")) = 0.0;
    for (Rank r = 1; r < world; ++r) {
      const double t0 = obs.Now();
      t.Post(r, kObsClockTag, AsBytes(t0));
      t.Recv(r, kObsClockTag, buf);
      const double t3 = obs.Now();
      const auto stamps = FromBytes<std::array<double, 2>>(buf);
      const double offset = ((stamps[0] - t0) + (stamps[1] - t3)) * 0.5;
      t.Post(r, kObsOffsetTag, AsBytes(offset));
    }
    PSRA_REQUIRE(out != nullptr, "rank 0 needs a bundle to collect into");
    out->ranks.clear();
    out->ranks.resize(world);
    // Rank 0's own state goes through the same serialize/parse path as every
    // peer's, so the merged artifact is uniform by construction.
    out->ranks[0] = obs::ParseWireObsPayload(obs::SerializeWireObs(obs));
    out->metrics = out->ranks[0].metrics;
    for (Rank r = 1; r < world; ++r) {
      t.Recv(r, kObsPayloadTag, buf);
      const std::string_view text(reinterpret_cast<const char*>(buf.data()),
                                  buf.size());
      obs::RankObsPayload payload = obs::ParseWireObsPayload(text);
      PSRA_REQUIRE(payload.rank == r,
                   "wire obs payload carries the wrong rank");
      out->metrics.MergeFrom(payload.metrics);
      out->ranks[r] = std::move(payload);
    }
    t.Fence();
    return true;
  }

  t.Recv(0, kObsClockTag, buf);
  const double t1 = obs.Now();
  (void)FromBytes<double>(buf);  // t0 stays on rank 0; validate the frame
  const std::array<double, 2> stamps = {t1, obs.Now()};
  t.Post(0, kObsClockTag, AsBytes(stamps));
  t.Recv(0, kObsOffsetTag, buf);
  obs.clock_offset_s = FromBytes<double>(buf);
  obs.metrics().Gauge(obs.RankKey("clock_offset_s")) = obs.clock_offset_s;

  const std::string text = obs::SerializeWireObs(obs);
  t.Post(0, kObsPayloadTag,
         std::as_bytes(std::span<const char>(text.data(), text.size())));
  t.Fence();
  return false;
}

}  // namespace psra::comm
