// Work-stealing-free, queue-based thread pool used to execute the per-worker
// x-updates of a simulated iteration in parallel on the host.
//
// Host parallelism is a wall-clock optimization only: virtual time is charged
// from flop counts (simnet::CostModel), so results are identical whether the
// pool has 1 or 64 threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace psra::engine {

class ThreadPool {
 public:
  /// `num_threads` == 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs body(i) for i in [0, count), distributing across the pool and
  /// blocking until all complete. Exceptions from bodies are rethrown (the
  /// first one encountered).
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Serial fallback with the same contract; used when determinism of
/// execution *order* matters (e.g. debugging) or no pool is available.
void SerialFor(std::size_t count, const std::function<void(std::size_t)>& body);

}  // namespace psra::engine
