// Fork-join thread pool used to execute the per-worker loops of a simulated
// iteration in parallel on the host.
//
// Host parallelism is a wall-clock optimization only: virtual time is charged
// from flop counts (simnet::CostModel), so results are identical whether the
// pool has 1 or 64 threads. The engine relies on this, so every parallel
// reduction in the codebase goes through BlockedReduce below, whose result
// depends only on the block structure — never on thread scheduling.
//
// The pool is allocation-free in steady state: a parallel region publishes a
// raw (function pointer, context) pair to the resident worker threads and
// hands out chunks through an atomic cursor, so no std::function, task queue
// node, or other heap traffic occurs per call. This keeps ParallelFor usable
// inside the zero-allocation iteration hot path (see DESIGN.md "Performance").
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace psra::engine {

class ThreadPool {
 public:
  /// `num_threads` == 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Tests only: disable the single-core inline shortcut so the worker
  /// broadcast path runs even on a 1-CPU host.
  void ForceParallelDispatchForTesting() { serial_dispatch_ = false; }

  /// Seconds on the calling thread's private stopwatch (each thread's epoch
  /// is fixed at first use). A loop body that reads it before and after its
  /// work measures the host wall time of exactly that body on whichever
  /// pool thread ran it — the basis for per-worker wall attribution in the
  /// observability layer (EngineObs::SpanAllWall). Only differences taken on
  /// the same thread are meaningful.
  static double ThreadSeconds();

  /// Runs body(i) for i in [0, count), distributing across the pool and
  /// blocking until all complete. The calling thread participates in the
  /// work. Exceptions from bodies are rethrown (the first one encountered);
  /// remaining indices still run. Nested calls — from inside a body, on any
  /// thread — execute serially inline rather than deadlocking.
  template <typename Body>
  void ParallelFor(std::size_t count, Body&& body) {
    ParallelFor(count, /*grain=*/1,
                [&body](std::size_t begin, std::size_t end) {
                  for (std::size_t i = begin; i < end; ++i) body(i);
                });
  }

  /// Chunked overload: runs body(begin, end) over half-open sub-ranges of
  /// [0, count) of at most `grain` indices each. Prefer this for cheap
  /// per-index work, where handing out single indices would be all
  /// contention. grain == 0 is treated as 1. Same blocking/exception/nesting
  /// contract as the per-index overload.
  template <typename Body>
  void ParallelFor(std::size_t count, std::size_t grain, Body&& body) {
    using Fn = std::remove_reference_t<Body>;
    RunBlocked(count, grain,
               [](void* ctx, std::size_t begin, std::size_t end) {
                 (*static_cast<Fn*>(ctx))(begin, end);
               },
               const_cast<void*>(
                   static_cast<const void*>(std::addressof(body))));
  }

 private:
  using BlockFn = void (*)(void* ctx, std::size_t begin, std::size_t end);

  void RunBlocked(std::size_t count, std::size_t grain, BlockFn fn, void* ctx);
  void WorkerLoop();
  void RunChunks(BlockFn fn, void* ctx, std::size_t count, std::size_t grain);

  std::vector<std::thread> workers_;

  // Single-core host: job broadcast can never win, run regions inline.
  bool serial_dispatch_ = false;

  // One parallel region at a time; re-entrant calls fall back to serial.
  std::mutex region_mutex_;

  // Job broadcast state, all guarded by mutex_ (job_cursor_ is the only
  // field touched outside it, by design).
  std::mutex mutex_;
  std::condition_variable job_cv_;   // workers: "a new job is published"
  std::condition_variable done_cv_;  // caller: "all workers drained the job"
  std::uint64_t job_generation_ = 0;
  BlockFn job_fn_ = nullptr;
  void* job_ctx_ = nullptr;
  std::size_t job_count_ = 0;
  std::size_t job_grain_ = 1;
  std::size_t workers_active_ = 0;
  std::exception_ptr job_error_;
  bool stop_ = false;

  std::atomic<std::size_t> job_cursor_{0};
};

/// Serial fallback with the same contract; used when no pool is available.
template <typename Body>
void SerialFor(std::size_t count, Body&& body) {
  for (std::size_t i = 0; i < count; ++i) body(i);
}

/// Deterministic blocked reduction over [0, count).
///
/// The range is partitioned into ceil(count / grain) fixed blocks;
/// partial(begin, end) is evaluated once per block (in parallel when `pool`
/// is non-null, serially otherwise) into `partials`, and the block results
/// are folded with combine(acc, partials[b]) in ascending block order,
/// starting from `init`. Because the block structure depends only on
/// (count, grain), the result is BITWISE-IDENTICAL for any pool size
/// including none — this is what lets the engines parallelize floating-point
/// reductions without perturbing results.
///
/// `partials` is caller-owned scratch so steady-state calls do not allocate;
/// it is resized to the block count. Exceptions from partial() propagate
/// (first one encountered) via ParallelFor's contract.
template <typename T, typename PartialFn, typename CombineFn>
T BlockedReduce(ThreadPool* pool, std::size_t count, std::size_t grain,
                std::vector<T>& partials, T init, PartialFn&& partial,
                CombineFn&& combine) {
  if (grain == 0) grain = 1;
  const std::size_t blocks = count == 0 ? 0 : (count + grain - 1) / grain;
  partials.resize(blocks);
  auto run_block = [&](std::size_t b) {
    const std::size_t begin = b * grain;
    const std::size_t end = std::min(count, begin + grain);
    partials[b] = partial(begin, end);
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->ParallelFor(blocks, run_block);
  } else {
    SerialFor(blocks, run_block);
  }
  T acc = std::move(init);
  for (std::size_t b = 0; b < blocks; ++b) {
    acc = combine(std::move(acc), partials[b]);
  }
  return acc;
}

}  // namespace psra::engine
