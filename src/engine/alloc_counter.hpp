// Heap-allocation counting hook for the hot-path benchmarks.
//
// Linking the `psra_alloc_counter` library (and nothing else) replaces the
// global operator new/delete with counting forwarders to malloc/free. The
// accessors below then report how many allocations the whole process has
// performed, across all threads. Binaries that do not link the library must
// not include this header (the symbols would be unresolved) — only
// bench_hotpath does.
//
// The counters are process-global and monotonically increasing; measure a
// region by differencing AllocCount() before and after. bench_hotpath
// isolates the per-iteration cost by differencing two runs of different
// lengths, which cancels setup/teardown allocations exactly.
#pragma once

#include <cstdint>

namespace psra::engine {

/// Number of global operator new invocations since process start.
std::uint64_t AllocCount();

/// Number of global operator delete invocations since process start.
std::uint64_t FreeCount();

}  // namespace psra::engine
