#include "engine/alloc_counter.hpp"

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace psra::engine {
namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

void* CountedAlloc(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (size + align - 1) / align * align)
                : std::malloc(size);
  return p;
}

void CountedFree(void* p) {
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
}  // namespace

std::uint64_t AllocCount() { return g_allocs.load(std::memory_order_relaxed); }
std::uint64_t FreeCount() { return g_frees.load(std::memory_order_relaxed); }

}  // namespace psra::engine

// ---- global operator new/delete replacements ------------------------------
// Every standard signature forwards to the two counted primitives above so a
// single pair of counters covers scalar/array, sized, aligned, and nothrow
// forms.

void* operator new(std::size_t size) {
  void* p = psra::engine::CountedAlloc(size, 0);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  void* p = psra::engine::CountedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return psra::engine::CountedAlloc(size, 0);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return psra::engine::CountedAlloc(size, 0);
}

void operator delete(void* p) noexcept { psra::engine::CountedFree(p); }
void operator delete[](void* p) noexcept { psra::engine::CountedFree(p); }
void operator delete(void* p, std::size_t) noexcept {
  psra::engine::CountedFree(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  psra::engine::CountedFree(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  psra::engine::CountedFree(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  psra::engine::CountedFree(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  psra::engine::CountedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  psra::engine::CountedFree(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  psra::engine::CountedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  psra::engine::CountedFree(p);
}
