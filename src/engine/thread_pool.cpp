#include "engine/thread_pool.hpp"

#include <chrono>

namespace psra::engine {

namespace {
// True on a thread that is currently executing inside a parallel region
// (pool worker running chunks, or a caller thread between publish and
// drain). Nested ParallelFor calls from such threads run serially inline.
thread_local bool t_in_parallel_region = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // On a single-core host, broadcasting a job to the workers is pure
  // overhead (the caller already participates and results never depend on
  // the pool size), so dispatch falls back to the inline serial path.
  serial_dispatch_ = std::thread::hardware_concurrency() == 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

double ThreadPool::ThreadSeconds() {
  thread_local const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch)
      .count();
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::RunChunks(BlockFn fn, void* ctx, std::size_t count,
                           std::size_t grain) {
  for (;;) {
    const std::size_t begin =
        job_cursor_.fetch_add(grain, std::memory_order_relaxed);
    if (begin >= count) break;
    const std::size_t end = std::min(count, begin + grain);
    try {
      fn(ctx, begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!job_error_) job_error_ = std::current_exception();
    }
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    BlockFn fn;
    void* ctx;
    std::size_t count, grain;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_cv_.wait(lock, [&] {
        return stop_ || job_generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = job_generation_;
      fn = job_fn_;
      ctx = job_ctx_;
      count = job_count_;
      grain = job_grain_;
    }
    t_in_parallel_region = true;
    RunChunks(fn, ctx, count, grain);
    t_in_parallel_region = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--workers_active_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::RunBlocked(std::size_t count, std::size_t grain, BlockFn fn,
                            void* ctx) {
  if (count == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t blocks = (count + grain - 1) / grain;
  // Serial paths: single-thread pools, ranges too small to split, and
  // re-entrant calls (from a chunk body, or from a second ParallelFor on the
  // same thread) — re-entering the broadcast would deadlock.
  if (workers_.size() <= 1 || blocks <= 1 || serial_dispatch_ ||
      t_in_parallel_region) {
    for (std::size_t b = 0; b < count; b += grain) {
      fn(ctx, b, std::min(count, b + grain));
    }
    return;
  }

  // One region at a time; concurrent external callers queue up here.
  std::lock_guard<std::mutex> region(region_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_fn_ = fn;
    job_ctx_ = ctx;
    job_count_ = count;
    job_grain_ = grain;
    job_cursor_.store(0, std::memory_order_relaxed);
    workers_active_ = workers_.size();
    ++job_generation_;
  }
  job_cv_.notify_all();

  // The calling thread works too (it would otherwise idle-wait).
  t_in_parallel_region = true;
  RunChunks(fn, ctx, count, grain);
  t_in_parallel_region = false;

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return workers_active_ == 0; });
    error = std::exchange(job_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace psra::engine
