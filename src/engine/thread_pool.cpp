#include "engine/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "support/status.hpp"

namespace psra::engine {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (workers_.size() == 1 || count == 1) {
    SerialFor(count, body);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::condition_variable done_cv;
  std::mutex done_mutex;

  const std::size_t shards = std::min(count, workers_.size());
  auto shard_task = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) break;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (done.fetch_add(1) + 1 == shards) {
      std::lock_guard<std::mutex> lock(done_mutex);
      done_cv.notify_all();
    }
  };

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t s = 0; s < shards; ++s) tasks_.push(shard_task);
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done.load() == shards; });

  if (first_error) std::rethrow_exception(first_error);
}

void SerialFor(std::size_t count,
               const std::function<void(std::size_t)>& body) {
  for (std::size_t i = 0; i < count; ++i) body(i);
}

}  // namespace psra::engine
