// Per-worker virtual-time ledger.
//
// Each simulated worker accumulates Cal_time (computation) and Comm_time
// (communication, including grouping requests) exactly as the paper defines
// system time in Section 5.4: "the sum of the calculation time and the
// communication time".
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/cost_model.hpp"

namespace psra::engine {

struct WorkerTimes {
  simnet::VirtualTime cal_time = 0.0;
  simnet::VirtualTime comm_time = 0.0;
  /// The worker's running clock (when it becomes free).
  simnet::VirtualTime clock = 0.0;

  simnet::VirtualTime SystemTime() const { return cal_time + comm_time; }
};

class TimeLedger {
 public:
  explicit TimeLedger(std::size_t num_workers);

  std::size_t size() const { return workers_.size(); }
  WorkerTimes& operator[](std::size_t i);
  const WorkerTimes& operator[](std::size_t i) const;

  /// Advances worker i's clock by `dt` and books it as computation.
  void ChargeCompute(std::size_t i, simnet::VirtualTime dt);
  /// Advances worker i's clock by `dt` and books it as communication.
  void ChargeComm(std::size_t i, simnet::VirtualTime dt);
  /// Books `dt` as communication WITHOUT advancing the clock: the transfer
  /// ran on a dedicated communication thread overlapping computation (the
  /// ADMMLib per-node comm thread).
  void ChargeCommConcurrent(std::size_t i, simnet::VirtualTime dt);
  /// Moves worker i's clock forward to `t` (if later), booking the wait as
  /// communication time (synchronization waits are communication cost in the
  /// paper's accounting).
  void WaitUntil(std::size_t i, simnet::VirtualTime t);
  /// Moves worker i's clock forward to `t` (if later) WITHOUT booking any
  /// time: used for the dead time of a crashed worker, which is neither
  /// computation nor communication in the paper's system-time accounting.
  void SkipUntil(std::size_t i, simnet::VirtualTime t);

  /// Max clock across workers (current virtual makespan).
  simnet::VirtualTime MaxClock() const;
  /// Mean Cal_time / Comm_time across workers (what Figure 6/7 plot).
  simnet::VirtualTime MeanCalTime() const;
  simnet::VirtualTime MeanCommTime() const;
  simnet::VirtualTime MaxCalTime() const;
  simnet::VirtualTime MaxCommTime() const;

 private:
  std::vector<WorkerTimes> workers_;
};

}  // namespace psra::engine
