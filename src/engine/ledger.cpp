#include "engine/ledger.hpp"

#include <algorithm>

#include "support/status.hpp"

namespace psra::engine {

TimeLedger::TimeLedger(std::size_t num_workers) : workers_(num_workers) {
  PSRA_REQUIRE(num_workers >= 1, "ledger needs at least one worker");
}

WorkerTimes& TimeLedger::operator[](std::size_t i) {
  PSRA_REQUIRE(i < workers_.size(), "worker index out of range");
  return workers_[i];
}
const WorkerTimes& TimeLedger::operator[](std::size_t i) const {
  PSRA_REQUIRE(i < workers_.size(), "worker index out of range");
  return workers_[i];
}

void TimeLedger::ChargeCompute(std::size_t i, simnet::VirtualTime dt) {
  PSRA_REQUIRE(dt >= 0, "negative compute charge");
  auto& w = (*this)[i];
  w.cal_time += dt;
  w.clock += dt;
}

void TimeLedger::ChargeComm(std::size_t i, simnet::VirtualTime dt) {
  PSRA_REQUIRE(dt >= 0, "negative comm charge");
  auto& w = (*this)[i];
  w.comm_time += dt;
  w.clock += dt;
}

void TimeLedger::ChargeCommConcurrent(std::size_t i, simnet::VirtualTime dt) {
  PSRA_REQUIRE(dt >= 0, "negative comm charge");
  (*this)[i].comm_time += dt;
}

void TimeLedger::WaitUntil(std::size_t i, simnet::VirtualTime t) {
  auto& w = (*this)[i];
  if (t > w.clock) {
    w.comm_time += t - w.clock;
    w.clock = t;
  }
}

void TimeLedger::SkipUntil(std::size_t i, simnet::VirtualTime t) {
  auto& w = (*this)[i];
  w.clock = std::max(w.clock, t);
}

simnet::VirtualTime TimeLedger::MaxClock() const {
  simnet::VirtualTime m = 0.0;
  for (const auto& w : workers_) m = std::max(m, w.clock);
  return m;
}

simnet::VirtualTime TimeLedger::MeanCalTime() const {
  simnet::VirtualTime acc = 0.0;
  for (const auto& w : workers_) acc += w.cal_time;
  return acc / static_cast<double>(workers_.size());
}

simnet::VirtualTime TimeLedger::MeanCommTime() const {
  simnet::VirtualTime acc = 0.0;
  for (const auto& w : workers_) acc += w.comm_time;
  return acc / static_cast<double>(workers_.size());
}

simnet::VirtualTime TimeLedger::MaxCalTime() const {
  simnet::VirtualTime m = 0.0;
  for (const auto& w : workers_) m = std::max(m, w.cal_time);
  return m;
}

simnet::VirtualTime TimeLedger::MaxCommTime() const {
  simnet::VirtualTime m = 0.0;
  for (const auto& w : workers_) m = std::max(m, w.comm_time);
  return m;
}

}  // namespace psra::engine
