#include "simnet/event_queue.hpp"

#include <algorithm>

namespace psra::simnet {

namespace {

/// Heap/list order: `a` runs after `b`. Used as the comparator of the
/// working max-heap (whose top is therefore the earliest event) and of the
/// descending overflow list (whose back() is the earliest).
struct Later {
  template <typename R>
  bool operator()(const R* a, const R* b) const {
    if (a->time != b->time) return a->time > b->time;
    return a->seq > b->seq;
  }
};

}  // namespace

EventQueue::EventQueue(const WheelConfig& cfg)
    : inv_tick_(1.0 / cfg.tick_s),
      bucket_count_(cfg.buckets),
      bucket_mask_(cfg.buckets - 1) {
  PSRA_REQUIRE(cfg.tick_s > 0, "wheel tick must be positive");
  PSRA_REQUIRE(cfg.buckets >= 64 && std::has_single_bit(cfg.buckets),
               "wheel bucket count must be a power of two >= 64");
  buckets_.resize(bucket_count_);
  occupied_.assign(bucket_count_ >> 6, 0);
}

EventQueue::~EventQueue() {
  auto destroy_all = [](std::vector<Record*>& v) {
    for (Record* r : v) r->destroy(r->storage);
    v.clear();
  };
  destroy_all(ready_);
  for (auto& bucket : buckets_) destroy_all(bucket);
  destroy_all(overflow_);
}

std::uint64_t EventQueue::QuantumOf(VirtualTime t) const {
  const double q = t * inv_tick_;
  // Clamped quantization stays monotone, which is all correctness needs:
  // absurdly far (or non-finite) times just share the last quantum, and the
  // working heap still orders them by exact (time, seq).
  constexpr double kMaxQuantum = 9.0e18;
  if (!(q < kMaxQuantum)) return static_cast<std::uint64_t>(kMaxQuantum);
  return static_cast<std::uint64_t>(q);
}

EventQueue::Record* EventQueue::AllocRecord() {
  if (free_.empty()) AddSlab();
  Record* r = free_.back();
  free_.pop_back();
  return r;
}

void EventQueue::AddSlab() {
  constexpr std::size_t kSlabRecords = 256;
  slabs_.push_back(std::make_unique<Record[]>(kSlabRecords));
  total_records_ += kSlabRecords;
  // Keep capacity >= total records so FreeRecord never reallocates — that is
  // what lets the guard in Step() return records without touching the heap.
  free_.reserve(total_records_);
  Record* base = slabs_.back().get();
  for (std::size_t i = kSlabRecords; i > 0; --i) free_.push_back(base + i - 1);
}

void EventQueue::PlaceInWheel(Record* r, std::uint64_t quantum) {
  const auto bi = static_cast<std::uint32_t>(quantum) & bucket_mask_;
  buckets_[bi].push_back(r);
  occupied_[bi >> 6] |= std::uint64_t{1} << (bi & 63);
  ++wheel_count_;
}

void EventQueue::Insert(Record* r) {
  ++pending_;
  const std::uint64_t q = QuantumOf(r->time);
  if (q <= cur_quantum_) {
    // Same quantum as the one being drained: join the working heap, where
    // (time, seq) keeps it correctly ordered against its peers.
    ready_.push_back(r);
    std::push_heap(ready_.begin(), ready_.end(), Later{});
  } else if (q < cur_quantum_ + bucket_count_) {
    PlaceInWheel(r, q);
  } else {
    overflow_.insert(
        std::upper_bound(overflow_.begin(), overflow_.end(), r, Later{}), r);
  }
}

void EventQueue::MigrateOverflow() {
  const std::uint64_t horizon = cur_quantum_ + bucket_count_;
  while (!overflow_.empty()) {
    Record* r = overflow_.back();
    const std::uint64_t q = QuantumOf(r->time);
    if (q >= horizon) break;
    overflow_.pop_back();
    if (q <= cur_quantum_) {
      ready_.push_back(r);
      std::push_heap(ready_.begin(), ready_.end(), Later{});
    } else {
      PlaceInWheel(r, q);
    }
  }
}

std::uint32_t EventQueue::NextOccupiedOffset(std::uint32_t from) const {
  const std::uint32_t word_mask = (bucket_count_ >> 6) - 1;
  std::uint32_t wi = from >> 6;
  std::uint64_t w = occupied_[wi] & (~std::uint64_t{0} << (from & 63));
  for (std::uint32_t scanned = 0; scanned <= word_mask + 1; ++scanned) {
    if (w != 0) {
      const std::uint32_t idx =
          (wi << 6) + static_cast<std::uint32_t>(std::countr_zero(w));
      return (idx - from) & bucket_mask_;
    }
    wi = (wi + 1) & word_mask;
    w = occupied_[wi];
  }
  return bucket_count_;  // unreachable while wheel_count_ > 0
}

void EventQueue::Advance() {
  for (;;) {
    if (wheel_count_ == 0) {
      // Wheel idle: jump straight to the earliest far-future quantum. The
      // remaining overflow invariant (quantum >= old horizon) makes this a
      // strictly forward move.
      cur_quantum_ = QuantumOf(overflow_.back()->time);
      MigrateOverflow();
      if (!ready_.empty()) return;
      continue;
    }
    const auto cursor = static_cast<std::uint32_t>(cur_quantum_) & bucket_mask_;
    const std::uint32_t off = NextOccupiedOffset(cursor);
    const std::uint32_t bi = (cursor + off) & bucket_mask_;
    cur_quantum_ += off;
    auto& bucket = buckets_[bi];
    wheel_count_ -= bucket.size();
    occupied_[bi >> 6] &= ~(std::uint64_t{1} << (bi & 63));
    ready_.swap(bucket);  // ready_ is empty: capacities just circulate
    std::make_heap(ready_.begin(), ready_.end(), Later{});
    // The horizon moved with cur_quantum_; pull in overflow it now covers.
    MigrateOverflow();
    if (!ready_.empty()) return;
  }
}

bool EventQueue::Step() {
  if (pending_ == 0) return false;
  if (ready_.empty()) Advance();
  std::pop_heap(ready_.begin(), ready_.end(), Later{});
  Record* r = ready_.back();
  ready_.pop_back();
  --pending_;
  now_ = r->time;
  // Return the record to the free list even if the callback throws; the
  // callable itself is destroyed by RunAndDestroy's guard.
  struct FreeOnExit {
    EventQueue* q;
    Record* r;
    ~FreeOnExit() { q->FreeRecord(r); }
  } guard{this, r};
  r->run(r->storage);
  return true;
}

std::size_t EventQueue::Run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && Step()) ++n;
  return n;
}

}  // namespace psra::simnet
