#include "simnet/event_queue.hpp"

#include "support/status.hpp"

namespace psra::simnet {

void EventQueue::ScheduleAt(VirtualTime t, Callback cb) {
  PSRA_REQUIRE(t >= now_, "cannot schedule an event in the past");
  PSRA_REQUIRE(static_cast<bool>(cb), "null event callback");
  heap_.push(Event{t, next_seq_++, std::move(cb)});
}

void EventQueue::ScheduleAfter(VirtualTime delay, Callback cb) {
  PSRA_REQUIRE(delay >= 0, "negative delay");
  ScheduleAt(now_ + delay, std::move(cb));
}

bool EventQueue::Step() {
  if (heap_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB-free
  // here because we pop immediately — copy instead for clarity.
  Event ev = heap_.top();
  heap_.pop();
  now_ = ev.time;
  ev.cb();
  return true;
}

std::size_t EventQueue::Run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && Step()) ++n;
  return n;
}

}  // namespace psra::simnet
