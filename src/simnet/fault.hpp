// Fault injection (deterministic, seeded).
//
// A FaultPlan is a schedule of failures layered on top of the virtual-time
// simulation: worker crashes (with optional recovery after a fixed number of
// iterations), leader deaths in the middle of a grouping round, and
// transient message drops / delays on the wire. Every query is a pure
// function of (seed, iteration, channel, rank, attempt) — the same plan
// replayed against the same algorithm yields the same failures, so faulty
// runs are as reproducible as fault-free ones (the property the async /
// fault-tolerant ADMM literature calls out as hardest to debug without).
//
// A default-constructed plan is EMPTY: engines and collectives must take
// exactly their fault-free code path when Empty() is true, which is what the
// extended determinism test pins (DESIGN.md, "Fault model").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "simnet/cost_model.hpp"
#include "simnet/topology.hpp"

namespace psra::simnet {

/// Worker `rank` dies at the start of iteration `at_iteration` (it performs
/// no computation and joins no collective from then on) and comes back
/// `down_iterations` later by restoring the last checkpoint. 0 means it
/// never recovers.
struct CrashSpec {
  Rank rank = 0;
  std::uint64_t at_iteration = 0;
  std::uint64_t down_iterations = 0;
};

/// The elected leader of `node` dies in the MIDDLE of iteration
/// `at_iteration`: after it reported to the Group Generator but before its
/// group's allreduce ran. The GG withdraws the report (the remaining leaders
/// regroup); the dead worker then stays down for `down_iterations` full
/// iterations, during which its node re-elects a leader among survivors.
struct LeaderDeathSpec {
  NodeId node = 0;
  std::uint64_t at_iteration = 0;
  std::uint64_t down_iterations = 1;
};

struct FaultConfig {
  std::vector<CrashSpec> crashes;
  std::vector<LeaderDeathSpec> leader_deaths;

  /// Probability that a given sender's transfer inside a collective is lost
  /// (per member, per attempt). Lost transfers stall the whole collective
  /// for `retry_timeout_s`, then everyone retries, at most `max_retries`
  /// times; senders still failing on the final attempt are excluded and the
  /// collective completes over the surviving member set.
  double message_drop_probability = 0.0;
  std::uint32_t max_retries = 3;
  double retry_timeout_s = 1e-3;

  /// Probability that a message is delayed (not lost) by `message_delay_s`
  /// of extra virtual latency.
  double message_delay_probability = 0.0;
  double message_delay_s = 0.0;

  /// Crash-restart recovery policy: engines snapshot worker state every
  /// `checkpoint_every` iterations; a recovering worker pays
  /// `restart_delay_s` (process respawn) plus the virtual transfer time of
  /// its checkpointed vectors before rejoining.
  std::uint64_t checkpoint_every = 10;
  double restart_delay_s = 0.1;

  std::uint64_t seed = 41;
};

class FaultPlan {
 public:
  /// Empty plan: no faults, engines take the fault-free path.
  FaultPlan() = default;
  explicit FaultPlan(const FaultConfig& cfg);

  const FaultConfig& config() const { return cfg_; }

  /// True when the plan can never inject anything (no scheduled events and
  /// zero probabilities). Engines key their fast path off this.
  bool Empty() const;

  // --- Crash schedule -----------------------------------------------------
  /// Worker is down during `iteration` due to a CrashSpec (leader deaths are
  /// tracked by the engine, which knows who was elected).
  bool IsDown(Rank rank, std::uint64_t iteration) const;
  /// Worker dies at the start of this iteration.
  bool CrashesAt(Rank rank, std::uint64_t iteration) const;
  /// The CrashSpec firing for this worker at the start of this iteration
  /// (nullopt when none does). Engines use the spec's down_iterations to
  /// schedule the recovery.
  std::optional<CrashSpec> CrashAt(Rank rank, std::uint64_t iteration) const;
  /// First iteration the worker is back up (recovery happens at its start).
  bool RecoversAt(Rank rank, std::uint64_t iteration) const;
  const std::vector<CrashSpec>& crashes() const { return cfg_.crashes; }

  // --- Leader deaths ------------------------------------------------------
  std::optional<LeaderDeathSpec> LeaderDeathAt(NodeId node,
                                               std::uint64_t iteration) const;

  // --- Message-level faults -----------------------------------------------
  /// Transfer from group member with global rank `sender` is lost during
  /// collective invocation `channel` of `iteration`, attempt `attempt`.
  bool DropsMessage(std::uint64_t iteration, std::uint64_t channel,
                    Rank sender, std::uint32_t attempt) const;

  /// Extra virtual latency on the (sender -> receiver) message of collective
  /// invocation `channel`; 0 when the message is not delayed.
  VirtualTime MessageDelay(std::uint64_t iteration, std::uint64_t channel,
                           Rank sender, Rank receiver) const;

 private:
  FaultConfig cfg_;
};

}  // namespace psra::simnet
