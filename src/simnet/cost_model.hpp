// Virtual-time cost model for communication and computation.
//
// This replaces wall-clock measurement on the paper's testbed (DESIGN.md §2):
// every message is charged
//     latency(link) + elements * theta(link)
// where theta follows the paper's Section 4.2 definition
//     theta_s = (value_bytes + index_bytes) / B     (sparse elements)
//     theta_d =  value_bytes / B                    (dense elements)
// with B the link bandwidth. Computation is charged as
//     flops * seconds_per_flop * straggler_multiplier
// with flop counts reported by the solvers, so results are deterministic and
// host-independent.
//
// Defaults approximate the paper's platform: a TH2-Express-2-class NIC whose
// bandwidth is shared by the node's worker processes (~280 MB/s effective
// per process pair), an intra-node bus nearly two orders of magnitude
// faster, and ~2 GFLOP/s of scalar throughput per worker core. These
// defaults put the workloads in the paper's comm-dominated regime.
#pragma once

#include <cstddef>
#include <cstdint>

#include "simnet/topology.hpp"

namespace psra::simnet {

/// Virtual seconds.
using VirtualTime = double;

struct CostModelConfig {
  double net_bandwidth_bytes_per_s = 2.8e8;   // inter-node network, per process
  double bus_bandwidth_bytes_per_s = 16.0e9;  // intra-node bus / shared memory
  double rack_bandwidth_bytes_per_s = 1.0e8;  // cross-rack fabric, per process
  double net_latency_s = 8e-6;                // per message
  double bus_latency_s = 0.5e-6;              // per message
  double rack_latency_s = 25e-6;              // per message, cross-rack
  std::size_t value_bytes = 8;                // double precision
  std::size_t index_bytes = 8;                // 64-bit indices
  double seconds_per_flop = 5e-10;            // ~2 GFLOP/s per worker core
};

class CostModel {
 public:
  CostModel() : CostModel(CostModelConfig{}) {}
  explicit CostModel(const CostModelConfig& cfg);

  const CostModelConfig& config() const { return cfg_; }

  double BandwidthOf(Link link) const;
  VirtualTime LatencyOf(Link link) const;

  /// Paper theta_s: time to move one sparse element (value + index).
  VirtualTime SparseElementCost(Link link) const;

  /// Time to move one dense element (value only; indices are implicit).
  VirtualTime DenseElementCost(Link link) const;

  /// One message carrying `nnz` sparse elements.
  VirtualTime SparseTransferTime(Link link, std::size_t nnz) const;

  /// One message carrying `n` dense values.
  VirtualTime DenseTransferTime(Link link, std::size_t n) const;

  /// Computation charge for `flops` floating-point operations.
  VirtualTime ComputeTime(double flops) const;

 private:
  CostModelConfig cfg_;
};

}  // namespace psra::simnet
