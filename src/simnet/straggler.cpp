#include "simnet/straggler.hpp"

#include "support/status.hpp"

namespace psra::simnet {

StragglerModel::StragglerModel(const Topology& topo,
                               const StragglerConfig& cfg)
    : topo_(topo), cfg_(cfg) {
  PSRA_REQUIRE(cfg.node_probability >= 0.0 && cfg.node_probability <= 1.0,
               "straggler probability must be in [0, 1]");
  PSRA_REQUIRE(cfg.slow_factor_min >= 1.0,
               "slow factor must be at least 1 (slower, not faster)");
  PSRA_REQUIRE(cfg.slow_factor_max >= cfg.slow_factor_min,
               "slow factor range inverted");
}

StragglerModel StragglerModel::None(const Topology& topo) {
  StragglerConfig cfg;
  cfg.node_probability = 0.0;
  return StragglerModel(topo, cfg);
}

double StragglerModel::ComputeMultiplier(Rank rank,
                                         std::uint64_t iteration) const {
  if (!enabled()) return 1.0;
  const NodeId node = topo_.NodeOf(rank);
  // Deterministic per (seed, iteration, node): fork a stream keyed by both.
  Rng base(cfg_.seed);
  Rng iter_rng = base.Fork(iteration);
  Rng node_rng = iter_rng.Fork(node);
  if (!node_rng.NextBool(cfg_.node_probability)) return 1.0;
  return node_rng.NextDouble(cfg_.slow_factor_min, cfg_.slow_factor_max);
}

std::vector<NodeId> StragglerModel::StragglingNodes(
    std::uint64_t iteration) const {
  std::vector<NodeId> out;
  if (!enabled()) return out;
  for (NodeId n = 0; n < topo_.num_nodes(); ++n) {
    const Rank r = topo_.RankOf(n, 0);
    if (ComputeMultiplier(r, iteration) > 1.0) out.push_back(n);
  }
  return out;
}

}  // namespace psra::simnet
