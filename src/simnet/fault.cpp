#include "simnet/fault.hpp"

#include "support/rng.hpp"
#include "support/status.hpp"

namespace psra::simnet {

FaultPlan::FaultPlan(const FaultConfig& cfg) : cfg_(cfg) {
  PSRA_REQUIRE(cfg.message_drop_probability >= 0.0 &&
                   cfg.message_drop_probability < 1.0,
               "message drop probability must be in [0, 1)");
  PSRA_REQUIRE(cfg.message_delay_probability >= 0.0 &&
                   cfg.message_delay_probability <= 1.0,
               "message delay probability must be in [0, 1]");
  PSRA_REQUIRE(cfg.message_delay_s >= 0.0, "message delay must be >= 0");
  PSRA_REQUIRE(cfg.retry_timeout_s > 0.0 || cfg.message_drop_probability == 0.0,
               "retry timeout must be positive when drops are enabled");
  PSRA_REQUIRE(cfg.checkpoint_every >= 1, "checkpoint_every must be >= 1");
  PSRA_REQUIRE(cfg.restart_delay_s >= 0.0, "restart delay must be >= 0");
  for (const auto& c : cfg.crashes) {
    PSRA_REQUIRE(c.at_iteration >= 1, "crashes are scheduled per iteration "
                                      "(1-based); at_iteration must be >= 1");
  }
  for (const auto& l : cfg.leader_deaths) {
    PSRA_REQUIRE(l.at_iteration >= 1, "leader deaths are scheduled per "
                                      "iteration (1-based)");
  }
}

bool FaultPlan::Empty() const {
  return cfg_.crashes.empty() && cfg_.leader_deaths.empty() &&
         cfg_.message_drop_probability == 0.0 &&
         (cfg_.message_delay_probability == 0.0 || cfg_.message_delay_s == 0.0);
}

bool FaultPlan::IsDown(Rank rank, std::uint64_t iteration) const {
  for (const auto& c : cfg_.crashes) {
    if (c.rank != rank) continue;
    if (iteration < c.at_iteration) continue;
    if (c.down_iterations == 0) return true;  // never recovers
    if (iteration < c.at_iteration + c.down_iterations) return true;
  }
  return false;
}

bool FaultPlan::CrashesAt(Rank rank, std::uint64_t iteration) const {
  for (const auto& c : cfg_.crashes) {
    if (c.rank == rank && c.at_iteration == iteration) return true;
  }
  return false;
}

std::optional<CrashSpec> FaultPlan::CrashAt(Rank rank,
                                            std::uint64_t iteration) const {
  for (const auto& c : cfg_.crashes) {
    if (c.rank == rank && c.at_iteration == iteration) return c;
  }
  return std::nullopt;
}

bool FaultPlan::RecoversAt(Rank rank, std::uint64_t iteration) const {
  for (const auto& c : cfg_.crashes) {
    if (c.rank != rank || c.down_iterations == 0) continue;
    if (iteration == c.at_iteration + c.down_iterations) return true;
  }
  return false;
}

std::optional<LeaderDeathSpec> FaultPlan::LeaderDeathAt(
    NodeId node, std::uint64_t iteration) const {
  for (const auto& l : cfg_.leader_deaths) {
    if (l.node == node && l.at_iteration == iteration) return l;
  }
  return std::nullopt;
}

bool FaultPlan::DropsMessage(std::uint64_t iteration, std::uint64_t channel,
                             Rank sender, std::uint32_t attempt) const {
  if (cfg_.message_drop_probability == 0.0) return false;
  // Same fork discipline as StragglerModel: a pure function of
  // (seed, iteration, channel, sender, attempt) in that order.
  Rng base(cfg_.seed ^ 0xFA17D207ULL);
  Rng r = base.Fork(iteration).Fork(channel).Fork(sender).Fork(attempt);
  return r.NextBool(cfg_.message_drop_probability);
}

VirtualTime FaultPlan::MessageDelay(std::uint64_t iteration,
                                    std::uint64_t channel, Rank sender,
                                    Rank receiver) const {
  if (cfg_.message_delay_probability == 0.0 || cfg_.message_delay_s == 0.0) {
    return 0.0;
  }
  Rng base(cfg_.seed ^ 0xDE1A7ULL);
  Rng r = base.Fork(iteration).Fork(channel).Fork(sender).Fork(receiver);
  return r.NextBool(cfg_.message_delay_probability) ? cfg_.message_delay_s
                                                    : 0.0;
}

}  // namespace psra::simnet
