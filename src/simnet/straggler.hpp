// Straggler injection (paper Section 5.5).
//
// The paper simulates out-of-step nodes by "randomly select[ing] nodes and
// prolong[ing] their computation time". We reproduce that: per iteration a
// subset of nodes is chosen and every worker on a chosen node has its compute
// time multiplied by a slow factor. The selection is a pure function of
// (seed, iteration), so two algorithms compared under the same model see the
// same stragglers.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/topology.hpp"
#include "support/rng.hpp"

namespace psra::simnet {

struct StragglerConfig {
  /// Probability that a given node straggles in a given iteration.
  double node_probability = 0.0;
  /// Compute-time multiplier range for straggling nodes.
  double slow_factor_min = 2.0;
  double slow_factor_max = 5.0;
  std::uint64_t seed = 7;
};

class StragglerModel {
 public:
  StragglerModel(const Topology& topo, const StragglerConfig& cfg);

  /// Disabled model: every multiplier is 1.
  static StragglerModel None(const Topology& topo);

  /// Multiplier applied to compute time of `rank` during `iteration`.
  double ComputeMultiplier(Rank rank, std::uint64_t iteration) const;

  /// Nodes straggling during `iteration` (ascending).
  std::vector<NodeId> StragglingNodes(std::uint64_t iteration) const;

  bool enabled() const { return cfg_.node_probability > 0.0; }
  const StragglerConfig& config() const { return cfg_; }

 private:
  Topology topo_;
  StragglerConfig cfg_;
};

}  // namespace psra::simnet
