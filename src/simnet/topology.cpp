#include "simnet/topology.hpp"

#include "support/status.hpp"

namespace psra::simnet {

Topology::Topology(NodeId num_nodes, std::uint32_t workers_per_node,
                   std::uint32_t num_racks)
    : num_nodes_(num_nodes),
      workers_per_node_(workers_per_node),
      num_racks_(num_racks) {
  PSRA_REQUIRE(num_nodes >= 1, "topology needs at least one node");
  PSRA_REQUIRE(workers_per_node >= 1, "topology needs at least one worker per node");
  PSRA_REQUIRE(num_racks >= 1, "topology needs at least one rack");
  PSRA_REQUIRE(num_nodes % num_racks == 0,
               "num_racks must divide num_nodes evenly");
}

NodeId Topology::NodeOf(Rank r) const {
  PSRA_REQUIRE(r < world_size(), "rank out of range");
  return r / workers_per_node_;
}

std::uint32_t Topology::LocalIndexOf(Rank r) const {
  PSRA_REQUIRE(r < world_size(), "rank out of range");
  return r % workers_per_node_;
}

Rank Topology::RankOf(NodeId node, std::uint32_t local) const {
  PSRA_REQUIRE(node < num_nodes_, "node out of range");
  PSRA_REQUIRE(local < workers_per_node_, "local index out of range");
  return node * workers_per_node_ + local;
}

RackId Topology::RackOf(NodeId node) const {
  PSRA_REQUIRE(node < num_nodes_, "node out of range");
  return node / nodes_per_rack();
}

RackId Topology::RackOfRank(Rank r) const { return RackOf(NodeOf(r)); }

bool Topology::SameNode(Rank a, Rank b) const {
  return NodeOf(a) == NodeOf(b);
}

bool Topology::SameRack(Rank a, Rank b) const {
  return RackOfRank(a) == RackOfRank(b);
}

Link Topology::LinkBetween(Rank a, Rank b) const {
  if (a == b) return Link::kLocal;
  if (SameNode(a, b)) return Link::kIntraNode;
  return SameRack(a, b) ? Link::kInterNode : Link::kInterRack;
}

std::vector<Rank> Topology::RanksOnNode(NodeId node) const {
  PSRA_REQUIRE(node < num_nodes_, "node out of range");
  std::vector<Rank> out;
  out.reserve(workers_per_node_);
  for (std::uint32_t l = 0; l < workers_per_node_; ++l) {
    out.push_back(RankOf(node, l));
  }
  return out;
}

std::vector<NodeId> Topology::NodesInRack(RackId rack) const {
  PSRA_REQUIRE(rack < num_racks_, "rack out of range");
  const NodeId npr = nodes_per_rack();
  std::vector<NodeId> out;
  out.reserve(npr);
  for (NodeId i = 0; i < npr; ++i) out.push_back(rack * npr + i);
  return out;
}

}  // namespace psra::simnet
