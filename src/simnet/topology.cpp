#include "simnet/topology.hpp"

#include "support/status.hpp"

namespace psra::simnet {

Topology::Topology(NodeId num_nodes, std::uint32_t workers_per_node)
    : num_nodes_(num_nodes), workers_per_node_(workers_per_node) {
  PSRA_REQUIRE(num_nodes >= 1, "topology needs at least one node");
  PSRA_REQUIRE(workers_per_node >= 1, "topology needs at least one worker per node");
}

NodeId Topology::NodeOf(Rank r) const {
  PSRA_REQUIRE(r < world_size(), "rank out of range");
  return r / workers_per_node_;
}

std::uint32_t Topology::LocalIndexOf(Rank r) const {
  PSRA_REQUIRE(r < world_size(), "rank out of range");
  return r % workers_per_node_;
}

Rank Topology::RankOf(NodeId node, std::uint32_t local) const {
  PSRA_REQUIRE(node < num_nodes_, "node out of range");
  PSRA_REQUIRE(local < workers_per_node_, "local index out of range");
  return node * workers_per_node_ + local;
}

bool Topology::SameNode(Rank a, Rank b) const {
  return NodeOf(a) == NodeOf(b);
}

Link Topology::LinkBetween(Rank a, Rank b) const {
  if (a == b) return Link::kLocal;
  return SameNode(a, b) ? Link::kIntraNode : Link::kInterNode;
}

std::vector<Rank> Topology::RanksOnNode(NodeId node) const {
  PSRA_REQUIRE(node < num_nodes_, "node out of range");
  std::vector<Rank> out;
  out.reserve(workers_per_node_);
  for (std::uint32_t l = 0; l < workers_per_node_; ++l) {
    out.push_back(RankOf(node, l));
  }
  return out;
}

}  // namespace psra::simnet
