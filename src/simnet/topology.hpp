// Multi-level cluster topology: racks of physical nodes, each node hosting
// several workers.
//
// Mirrors the paper's experimental platform (Tianhe-2: up to 32 nodes x 16
// processes), extended with an optional rack level for the multi-level
// hierarchy sweep. Worker ranks are global and dense: rank = node * wpn +
// local; nodes are assigned to racks contiguously: rack = node / npr.
// Workers on the same node communicate over the bus; workers on different
// nodes of one rack over the rack network; workers in different racks over
// the (slower) cross-rack fabric — the distinction drives the CostModel and
// the WLG hierarchical grouping. The default of one rack reproduces the
// original two-level topology exactly.
#pragma once

#include <cstdint>
#include <vector>

namespace psra::simnet {

using Rank = std::uint32_t;
using NodeId = std::uint32_t;
using RackId = std::uint32_t;

enum class Link {
  kLocal,      // same worker (no transfer)
  kIntraNode,  // same physical node: bus
  kInterNode,  // different nodes, same rack: network
  kInterRack,  // different racks: cross-rack fabric
};

class Topology {
 public:
  Topology(NodeId num_nodes, std::uint32_t workers_per_node)
      : Topology(num_nodes, workers_per_node, 1) {}
  /// `num_racks` must divide `num_nodes`; rack r hosts nodes
  /// [r * npr, (r+1) * npr) with npr = num_nodes / num_racks.
  Topology(NodeId num_nodes, std::uint32_t workers_per_node,
           std::uint32_t num_racks);

  NodeId num_nodes() const { return num_nodes_; }
  std::uint32_t workers_per_node() const { return workers_per_node_; }
  std::uint32_t num_racks() const { return num_racks_; }
  NodeId nodes_per_rack() const { return num_nodes_ / num_racks_; }
  Rank world_size() const { return num_nodes_ * workers_per_node_; }

  NodeId NodeOf(Rank r) const;
  std::uint32_t LocalIndexOf(Rank r) const;
  Rank RankOf(NodeId node, std::uint32_t local) const;
  RackId RackOf(NodeId node) const;
  RackId RackOfRank(Rank r) const;

  bool SameNode(Rank a, Rank b) const;
  bool SameRack(Rank a, Rank b) const;
  Link LinkBetween(Rank a, Rank b) const;

  /// All ranks hosted on `node`, ascending.
  std::vector<Rank> RanksOnNode(NodeId node) const;

  /// All nodes in `rack`, ascending.
  std::vector<NodeId> NodesInRack(RackId rack) const;

 private:
  NodeId num_nodes_;
  std::uint32_t workers_per_node_;
  std::uint32_t num_racks_;
};

}  // namespace psra::simnet
