// Two-level cluster topology: physical nodes each hosting several workers.
//
// Mirrors the paper's experimental platform (Tianhe-2: up to 32 nodes x 16
// processes). Worker ranks are global and dense: rank = node * wpn + local.
// Workers on the same node communicate over the bus; workers on different
// nodes over the network — the distinction drives the CostModel and the WLG
// hierarchical grouping.
#pragma once

#include <cstdint>
#include <vector>

namespace psra::simnet {

using Rank = std::uint32_t;
using NodeId = std::uint32_t;

enum class Link {
  kLocal,      // same worker (no transfer)
  kIntraNode,  // same physical node: bus
  kInterNode,  // different nodes: network
};

class Topology {
 public:
  Topology(NodeId num_nodes, std::uint32_t workers_per_node);

  NodeId num_nodes() const { return num_nodes_; }
  std::uint32_t workers_per_node() const { return workers_per_node_; }
  Rank world_size() const { return num_nodes_ * workers_per_node_; }

  NodeId NodeOf(Rank r) const;
  std::uint32_t LocalIndexOf(Rank r) const;
  Rank RankOf(NodeId node, std::uint32_t local) const;

  bool SameNode(Rank a, Rank b) const;
  Link LinkBetween(Rank a, Rank b) const;

  /// All ranks hosted on `node`, ascending.
  std::vector<Rank> RanksOnNode(NodeId node) const;

 private:
  NodeId num_nodes_;
  std::uint32_t workers_per_node_;
};

}  // namespace psra::simnet
