#include "simnet/cost_model.hpp"

#include "support/status.hpp"

namespace psra::simnet {

CostModel::CostModel(const CostModelConfig& cfg) : cfg_(cfg) {
  PSRA_REQUIRE(cfg.net_bandwidth_bytes_per_s > 0, "net bandwidth must be positive");
  PSRA_REQUIRE(cfg.bus_bandwidth_bytes_per_s > 0, "bus bandwidth must be positive");
  PSRA_REQUIRE(cfg.rack_bandwidth_bytes_per_s > 0,
               "cross-rack bandwidth must be positive");
  PSRA_REQUIRE(cfg.net_latency_s >= 0, "net latency must be non-negative");
  PSRA_REQUIRE(cfg.bus_latency_s >= 0, "bus latency must be non-negative");
  PSRA_REQUIRE(cfg.rack_latency_s >= 0,
               "cross-rack latency must be non-negative");
  PSRA_REQUIRE(cfg.value_bytes > 0, "value_bytes must be positive");
  PSRA_REQUIRE(cfg.seconds_per_flop > 0, "seconds_per_flop must be positive");
}

double CostModel::BandwidthOf(Link link) const {
  switch (link) {
    case Link::kLocal: return 0.0;  // unused; transfers are free
    case Link::kIntraNode: return cfg_.bus_bandwidth_bytes_per_s;
    case Link::kInterNode: return cfg_.net_bandwidth_bytes_per_s;
    case Link::kInterRack: return cfg_.rack_bandwidth_bytes_per_s;
  }
  return cfg_.net_bandwidth_bytes_per_s;
}

VirtualTime CostModel::LatencyOf(Link link) const {
  switch (link) {
    case Link::kLocal: return 0.0;
    case Link::kIntraNode: return cfg_.bus_latency_s;
    case Link::kInterNode: return cfg_.net_latency_s;
    case Link::kInterRack: return cfg_.rack_latency_s;
  }
  return cfg_.net_latency_s;
}

VirtualTime CostModel::SparseElementCost(Link link) const {
  if (link == Link::kLocal) return 0.0;
  return static_cast<double>(cfg_.value_bytes + cfg_.index_bytes) /
         BandwidthOf(link);
}

VirtualTime CostModel::DenseElementCost(Link link) const {
  if (link == Link::kLocal) return 0.0;
  return static_cast<double>(cfg_.value_bytes) / BandwidthOf(link);
}

VirtualTime CostModel::SparseTransferTime(Link link, std::size_t nnz) const {
  if (link == Link::kLocal) return 0.0;
  return LatencyOf(link) + static_cast<double>(nnz) * SparseElementCost(link);
}

VirtualTime CostModel::DenseTransferTime(Link link, std::size_t n) const {
  if (link == Link::kLocal) return 0.0;
  return LatencyOf(link) + static_cast<double>(n) * DenseElementCost(link);
}

VirtualTime CostModel::ComputeTime(double flops) const {
  PSRA_REQUIRE(flops >= 0, "negative flop count");
  return flops * cfg_.seconds_per_flop;
}

}  // namespace psra::simnet
