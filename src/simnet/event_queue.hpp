// Discrete-event queue over virtual time.
//
// Used by the asynchronous baseline (AD-ADMM) and the Group Generator to
// order worker arrivals deterministically: ties on time are broken by
// insertion sequence, so a given seed reproduces the exact event ordering.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "simnet/cost_model.hpp"

namespace psra::simnet {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;

  /// Schedules `cb` at absolute virtual time `t` (must be >= Now()).
  void ScheduleAt(VirtualTime t, Callback cb);

  /// Schedules `cb` `delay` seconds after Now().
  void ScheduleAfter(VirtualTime delay, Callback cb);

  /// Runs events in time order until the queue drains (or `max_events`).
  /// Returns the number of events executed.
  std::size_t Run(std::size_t max_events = SIZE_MAX);

  /// Executes only the next event; returns false if the queue is empty.
  bool Step();

  VirtualTime Now() const { return now_; }
  bool Empty() const { return heap_.empty(); }
  std::size_t Pending() const { return heap_.size(); }

 private:
  struct Event {
    VirtualTime time;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  VirtualTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace psra::simnet
