// Discrete-event queue over virtual time.
//
// Used by the asynchronous baseline (AD-ADMM) and the Group Generator to
// order worker arrivals deterministically: ties on time are broken by
// insertion sequence, so a given seed reproduces the exact event ordering.
//
// The implementation is an indexed timer wheel sized for O(10k) concurrent
// actors (DESIGN.md §10):
//
//   - Virtual time is quantized to ticks. The wheel hashes the next
//     `buckets` quanta (bucket = quantum % buckets), so inserting a
//     near-future event is O(1) instead of O(log n).
//   - Events past the wheel horizon land in a sorted overflow list and
//     migrate into buckets as the horizon advances; an empty wheel jumps
//     straight to the earliest overflow quantum, so coarse schedules (e.g.
//     unit-spaced test events) never scan idle buckets.
//   - The quantum being drained sits in a small working heap ordered by
//     (time, seq) — quantization can coarsen bucket placement but never
//     reorders execution, and the original deterministic tie-break contract
//     is preserved exactly.
//   - Event records are fixed-size and slab-allocated; callables are stored
//     inline (no std::function heap spill) and records recycle through a
//     free list, so the steady-state path performs zero allocations per
//     event (gated in tests/test_alloc.cpp).
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "simnet/cost_model.hpp"
#include "support/status.hpp"

namespace psra::simnet {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Callables larger than this must capture a pointer to out-of-band
  /// context; the record size is what keeps the arena slab-friendly.
  static constexpr std::size_t kInlineCallbackBytes = 64;

  struct WheelConfig {
    /// Quantization step. Only a performance knob: execution order is
    /// decided by exact (time, seq), never by the tick.
    VirtualTime tick_s = 2e-6;
    /// Wheel size (power of two). horizon = tick_s * buckets.
    std::uint32_t buckets = 8192;
  };

  EventQueue() : EventQueue(WheelConfig{}) {}
  explicit EventQueue(const WheelConfig& cfg);
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `cb` at absolute virtual time `t` (must be >= Now()).
  template <typename F>
  void ScheduleAt(VirtualTime t, F cb) {
    static_assert(std::is_invocable_v<F&>, "event callback must be callable");
    static_assert(sizeof(F) <= kInlineCallbackBytes,
                  "event callback too large for inline record storage; "
                  "capture a pointer to shared context instead");
    static_assert(alignof(F) <= alignof(std::max_align_t),
                  "over-aligned event callback");
    PSRA_REQUIRE(t >= now_, "cannot schedule an event in the past");
    if constexpr (std::is_constructible_v<bool, const F&>) {
      PSRA_REQUIRE(static_cast<bool>(cb), "null event callback");
    }
    Record* r = AllocRecord();
    r->time = t;
    r->seq = next_seq_++;
    ::new (static_cast<void*>(r->storage)) F(std::move(cb));
    r->run = &RunAndDestroy<F>;
    r->destroy = &DestroyOnly<F>;
    Insert(r);
  }

  /// Schedules `cb` `delay` seconds after Now().
  template <typename F>
  void ScheduleAfter(VirtualTime delay, F cb) {
    PSRA_REQUIRE(delay >= 0, "negative delay");
    ScheduleAt(now_ + delay, std::move(cb));
  }

  /// Runs events in time order until the queue drains (or `max_events`).
  /// Returns the number of events executed.
  std::size_t Run(std::size_t max_events = SIZE_MAX);

  /// Executes only the next event; returns false if the queue is empty.
  bool Step();

  VirtualTime Now() const { return now_; }
  bool Empty() const { return pending_ == 0; }
  std::size_t Pending() const { return pending_; }

 private:
  struct Record {
    VirtualTime time;
    std::uint64_t seq;
    void (*run)(void*);      // invoke the callable, then destroy it
    void (*destroy)(void*);  // destroy without invoking (queue teardown)
    alignas(std::max_align_t) unsigned char storage[kInlineCallbackBytes];
  };

  template <typename F>
  static void RunAndDestroy(void* p) {
    F* f = std::launder(reinterpret_cast<F*>(p));
    struct Dtor {
      F* f;
      ~Dtor() { f->~F(); }
    } dtor{f};
    (*f)();
  }

  template <typename F>
  static void DestroyOnly(void* p) {
    std::launder(reinterpret_cast<F*>(p))->~F();
  }

  std::uint64_t QuantumOf(VirtualTime t) const;
  Record* AllocRecord();
  void AddSlab();
  void FreeRecord(Record* r) { free_.push_back(r); }
  void Insert(Record* r);
  void PlaceInWheel(Record* r, std::uint64_t quantum);
  /// Moves overflow records whose quantum entered the horizon into the wheel
  /// (or the working heap when their quantum is the current one).
  void MigrateOverflow();
  /// Advances cur_quantum_ to the next non-empty quantum and refills the
  /// working heap. Precondition: ready_ empty, pending_ > 0.
  void Advance();
  std::uint32_t NextOccupiedOffset(std::uint32_t from) const;

  // -- working heap for the quantum being drained (min by time, then seq) --
  std::vector<Record*> ready_;

  // -- wheel: buckets_[q % buckets] holds quanta in [cur_quantum_, +buckets)
  std::vector<std::vector<Record*>> buckets_;
  std::vector<std::uint64_t> occupied_;  // bitmap over bucket indices
  std::size_t wheel_count_ = 0;

  // -- far-future events, sorted descending by (time, seq); back() is next --
  std::vector<Record*> overflow_;

  // -- arena ---------------------------------------------------------------
  std::vector<std::unique_ptr<Record[]>> slabs_;
  std::vector<Record*> free_;
  std::size_t total_records_ = 0;

  VirtualTime now_ = 0.0;
  double inv_tick_;
  std::uint32_t bucket_count_;
  std::uint32_t bucket_mask_;
  std::uint64_t cur_quantum_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t pending_ = 0;
};

}  // namespace psra::simnet
